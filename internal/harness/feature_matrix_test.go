package harness

import (
	"fmt"
	"testing"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/protocol"
)

// TestCrossFeatureMatrix smoke-tests the cross product of protocol family,
// processing guarantee and checkpoint GC on a failure run: every
// combination must complete, recover, and respect its guarantee's
// direction (no replay under at-most-once, no dedup under at-least-once).
func TestCrossFeatureMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	protos := []core.Protocol{
		protocol.Coordinated{}, protocol.Uncoordinated{}, protocol.CIC{},
	}
	for _, p := range protos {
		for _, sem := range []core.Semantics{core.ExactlyOnce, core.AtLeastOnce, core.AtMostOnce} {
			for _, gc := range []bool{false, true} {
				p, sem, gc := p, sem, gc
				name := fmt.Sprintf("%s/%s/gc=%v", p.Name(), sem, gc)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					res, err := Run(RunConfig{
						Query: "q12", Protocol: p, Workers: 2, Rate: 3000,
						Duration: 1200 * time.Millisecond, FailureAt: 500 * time.Millisecond,
						Window: 200 * time.Millisecond, Semantics: sem,
						CheckpointGC: gc, Seed: 17,
					})
					if err != nil {
						t.Fatal(err)
					}
					s := res.Summary
					if s.SinkCount == 0 {
						t.Fatal("no output")
					}
					if s.Failures != 1 {
						t.Fatalf("failures = %d", s.Failures)
					}
					if sem == core.AtMostOnce && s.ReplayMessages != 0 {
						t.Fatalf("at-most-once replayed %d messages", s.ReplayMessages)
					}
					if sem == core.AtLeastOnce && s.DupDropped != 0 && p.Kind().NeedsLogging() {
						t.Fatalf("at-least-once deduplicated %d messages", s.DupDropped)
					}
					if gc && p.Kind() != core.KindNone && s.TotalCheckpoints > 0 && s.GCCheckpoints == 0 {
						// GC may legitimately reclaim nothing on very short
						// runs; only flag it when plenty of checkpoints
						// accumulated.
						if s.TotalCheckpoints > 40 {
							t.Fatalf("GC reclaimed nothing out of %d checkpoints", s.TotalCheckpoints)
						}
					}
				})
			}
		}
	}
}

// TestExtensionSuiteTables exercises the extension/ablation table drivers
// end to end at a small scale, checking each renders a non-empty table.
func TestExtensionSuiteTables(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewSuite()
	s.Scale = 0.04
	s.SkewWorkers = 2
	s.Out = nil
	tables := []struct {
		name string
		f    func() (tbl interface{ String() string }, err error)
	}{
		{"semantics", func() (interface{ String() string }, error) { return s.ExtensionSemanticsTable() }},
		{"policy", func() (interface{ String() string }, error) { return s.AblationTriggerPolicyTable() }},
		{"gc", func() (interface{ String() string }, error) { return s.AblationGCTable() }},
	}
	for _, tc := range tables {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tbl, err := tc.f()
			if err != nil {
				t.Fatal(err)
			}
			out := tbl.String()
			if len(out) < 40 {
				t.Fatalf("table suspiciously short:\n%s", out)
			}
		})
	}
}
