package harness

import (
	"fmt"
	"sort"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/metrics"
)

// RecoveryBenchConfig describes one recovery-time (RTO) measurement: a
// paced run that suffers a failure partway through, measured from failure
// to caught-up and split by recovery phase. The protocol, the placement
// policy, the failure domain and the worker-local cache are the axes the
// benchmark grid varies.
type RecoveryBenchConfig struct {
	// Query is a workload name accepted by RunConfig.Query.
	Query string
	// Protocol is the checkpointing protocol under evaluation.
	Protocol core.Protocol
	// Workers is the parallelism. Defaults to 4.
	Workers int
	// ClusterWorkers is the cluster size (0 = Workers).
	ClusterWorkers int
	// Placement is the placement policy (default "spread").
	Placement string
	// LocalCache enables the worker-local state cache (warm-cache
	// recovery); disabled is the cold baseline where every restored byte
	// is a remote object-store fetch.
	LocalCache bool
	// Domain is the failure domain ("worker", "rack", "rolling";
	// default "worker"). RackSize bounds rack/rolling domains.
	Domain   string
	RackSize int
	// FailWorker is the (first) worker killed, wrapped into the cluster;
	// worker 0 by default.
	FailWorker int
	// Rate is the input rate (events/second). Defaults to 20000.
	Rate float64
	// Duration is the run length (default 5s); FailureAt the failure
	// offset (default 40% of Duration).
	Duration  time.Duration
	FailureAt time.Duration
	// CheckpointInterval defaults to a tenth of the run, so several
	// checkpoints exist before the failure.
	CheckpointInterval time.Duration
	// Seed drives workload generation. Defaults to 1.
	Seed int64
	// Repeat runs the measurement this many times and reports the run
	// with the median RTO, damping scheduler noise. Defaults to 1.
	Repeat int
	// DeltaCheckpoints persists keyed state as base-plus-delta chains
	// (larger-state configuration; chains are fetched and composed on
	// recovery).
	DeltaCheckpoints bool
	// SpillState runs keyed state on the spillable backend, making
	// restore an mmap of fetched segment blobs instead of a full decode —
	// the FetchMs column then measures the zero-copy path.
	SpillState      bool
	SpillMaxMB      int
	SpillMaxEntries int
}

func (cfg *RecoveryBenchConfig) applyDefaults() error {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.ClusterWorkers <= 0 {
		cfg.ClusterWorkers = cfg.Workers
	}
	if cfg.Placement == "" {
		cfg.Placement = "spread"
	}
	if cfg.Domain == "" {
		cfg.Domain = "worker"
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 20000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.FailureAt <= 0 {
		cfg.FailureAt = cfg.Duration * 2 / 5
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = cfg.Duration / 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Protocol == nil {
		return fmt.Errorf("harness: recovery bench needs a protocol")
	}
	return nil
}

// RecoveryPoint is one machine-readable RTO measurement, the unit of the
// committed BENCH_recovery.json trajectory. Byte fields are in persisted
// (stored) form: RestoredBytes is the checkpoint volume the recovery
// consumed, of which LocalBytes came from worker-local caches and
// RemoteBytes from the object store — a cold recovery of the same failure
// fetches exactly RestoredBytes remotely, so RemoteBytes < RestoredBytes
// quantifies the warm-cache saving on identical restored state.
type RecoveryPoint struct {
	Query          string `json:"query"`
	Protocol       string `json:"protocol"`
	Placement      string `json:"placement"`
	Domain         string `json:"domain"`
	Workers        int    `json:"workers"`
	ClusterWorkers int    `json:"cluster_workers"`
	LocalCache     bool   `json:"local_cache"`
	FailedWorkers  []int  `json:"failed_workers"`

	Recovered bool `json:"recovered"`
	// The RTO phase breakdown, in milliseconds.
	DetectMs   float64 `json:"detect_ms"`
	RollbackMs float64 `json:"rollback_ms"`
	FetchMs    float64 `json:"fetch_ms"`
	ReplayMs   float64 `json:"replay_ms"`
	CatchUpMs  float64 `json:"catchup_ms"`
	RTOMs      float64 `json:"rto_ms"`

	ScopeInstances int `json:"scope_instances"`
	ScopeWorkers   int `json:"scope_workers"`

	RestoredBytes uint64 `json:"restored_bytes"`
	LocalBytes    uint64 `json:"local_bytes"`
	RemoteBytes   uint64 `json:"remote_bytes"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`

	// ReplayedRecords counts log entries re-injected; RollbackRecords is
	// the source rewind distance.
	ReplayedRecords uint64 `json:"replayed_records"`
	RollbackRecords uint64 `json:"rollback_records"`

	// Spillable-state markers: when set, FetchMs covers the mmap
	// (segment-install) restore path instead of the wire decode.
	SpillState       bool `json:"spill_state,omitempty"`
	SpillMaxMB       int  `json:"spill_max_mb,omitempty"`
	DeltaCheckpoints bool `json:"delta_checkpoints,omitempty"`
}

func (cfg RecoveryBenchConfig) point(rto metrics.RTO, sum metrics.Summary) RecoveryPoint {
	pt := RecoveryPoint{
		Query:          cfg.Query,
		Protocol:       cfg.Protocol.Name(),
		Placement:      cfg.Placement,
		Domain:         cfg.Domain,
		Workers:        cfg.Workers,
		ClusterWorkers: cfg.ClusterWorkers,
		LocalCache:     cfg.LocalCache,
		FailedWorkers:  rto.FailedWorkers,

		Recovered:  rto.Total > 0,
		DetectMs:   ms(rto.Detect),
		RollbackMs: ms(rto.Rollback),
		FetchMs:    ms(rto.Fetch),
		ReplayMs:   ms(rto.Replay),
		CatchUpMs:  ms(rto.CatchUp),
		RTOMs:      ms(rto.Total),

		ScopeInstances: rto.ScopeInstances,
		ScopeWorkers:   rto.ScopeWorkers,

		RestoredBytes: rto.RestoredBytes,
		LocalBytes:    rto.LocalBytes,
		RemoteBytes:   rto.RemoteBytes,
		CacheHits:     rto.CacheHits,
		CacheMisses:   rto.CacheMisses,

		ReplayedRecords: sum.ReplayedOnRecovery,
		RollbackRecords: sum.RollbackDistance,

		SpillState:       cfg.SpillState,
		SpillMaxMB:       cfg.SpillMaxMB,
		DeltaCheckpoints: cfg.DeltaCheckpoints,
	}
	if !pt.Recovered {
		// The run ended before catch-up: report the restart portion so the
		// point is still comparable, flagged by Recovered=false.
		pt.RTOMs = ms(rto.Detect + rto.Rollback + rto.Fetch + rto.Replay)
	}
	return pt
}

// run executes one recovery measurement.
func (cfg RecoveryBenchConfig) run() (RecoveryPoint, error) {
	res, err := Run(RunConfig{
		Query:              cfg.Query,
		Protocol:           cfg.Protocol,
		Workers:            cfg.Workers,
		Rate:               cfg.Rate,
		Duration:           cfg.Duration,
		FailureAt:          cfg.FailureAt,
		FailWorker:         cfg.FailWorker,
		FailDomain:         cfg.Domain,
		FailRackSize:       cfg.RackSize,
		CheckpointInterval: cfg.CheckpointInterval,
		ClusterWorkers:     cfg.ClusterWorkers,
		Placement:          cfg.Placement,
		LocalCache:         cfg.LocalCache,
		Seed:               cfg.Seed,
		DeltaCheckpoints:   cfg.DeltaCheckpoints,
		SpillState:         cfg.SpillState,
		SpillMaxMB:         cfg.SpillMaxMB,
		SpillMaxEntries:    cfg.SpillMaxEntries,
	})
	if err != nil {
		return RecoveryPoint{}, err
	}
	rtos := res.Summary.RTOs
	if len(rtos) == 0 {
		return RecoveryPoint{}, fmt.Errorf("harness: recovery bench %s/%s recorded no recovery (failure at %v of %v)",
			cfg.Query, cfg.Protocol.Name(), cfg.FailureAt, cfg.Duration)
	}
	return cfg.point(rtos[len(rtos)-1], res.Summary), nil
}

// BenchRecovery measures the recovery time of one failure scenario and
// returns its RTO phase breakdown (the median-RTO run of cfg.Repeat
// attempts).
func BenchRecovery(cfg RecoveryBenchConfig) (RecoveryPoint, error) {
	if err := cfg.applyDefaults(); err != nil {
		return RecoveryPoint{}, err
	}
	if cfg.Repeat <= 1 {
		return cfg.run()
	}
	pts := make([]RecoveryPoint, 0, cfg.Repeat)
	for i := 0; i < cfg.Repeat; i++ {
		pt, err := cfg.run()
		if err != nil {
			return RecoveryPoint{}, err
		}
		pts = append(pts, pt)
	}
	// Prefer fully-recovered runs; among them pick the median RTO.
	recovered := pts[:0]
	for _, pt := range pts {
		if pt.Recovered {
			recovered = append(recovered, pt)
		}
	}
	if len(recovered) == 0 {
		recovered = pts
	}
	sort.Slice(recovered, func(a, b int) bool { return recovered[a].RTOMs < recovered[b].RTOMs })
	return recovered[len(recovered)/2], nil
}
