package harness

import (
	"testing"
	"time"

	"checkmate/internal/protocol"
)

// TestBatchedUnbatchedEquivalenceQ1 runs the real NexMark q1 workload at
// batch sizes 1 and 64 under each protocol family and requires identical
// sink output volume — failure-free exactly-once processing makes the sink
// count a deterministic function of the input, so any batching bug that
// loses, duplicates or reorders records across a marker shows up here.
// Deliberately cheap: it runs in -short mode as part of tier-1.
func TestBatchedUnbatchedEquivalenceQ1(t *testing.T) {
	for _, name := range []string{"COOR", "UNC", "CIC"} {
		t.Run(name, func(t *testing.T) {
			var counts [2]uint64
			for i, batch := range []int{1, 64} {
				proto, err := protocol.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				res, runErr := Run(RunConfig{
					Query:           "q1",
					Protocol:        proto,
					Workers:         2,
					Rate:            15000,
					Duration:        1200 * time.Millisecond,
					Seed:            7,
					BatchMaxRecords: batch,
				})
				if runErr != nil {
					t.Fatal(runErr)
				}
				if res.Summary.SinkCount == 0 {
					t.Fatalf("batch=%d produced no sink output", batch)
				}
				if res.Summary.TotalCheckpoints == 0 {
					t.Fatalf("batch=%d completed no checkpoints", batch)
				}
				counts[i] = res.Summary.SinkCount
				if batch > 1 && res.Summary.AvgBatchRecords <= 1 {
					t.Fatalf("batch=%d not engaged: %.2f rec/batch", batch, res.Summary.AvgBatchRecords)
				}
			}
			if counts[0] != counts[1] {
				t.Fatalf("sink counts differ: batch1=%d batch64=%d", counts[0], counts[1])
			}
		})
	}
}
