package harness

import (
	"testing"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/protocol"
)

// TestTransactionalOutputEndToEnd runs every checkpointing protocol through
// a NexMark query with a mid-run failure and checks the exactly-once-output
// contract of transactional sinks: no result is ever visible twice, and the
// stats balance.
func TestTransactionalOutputEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range []core.Protocol{protocol.Coordinated{}, protocol.Uncoordinated{}, protocol.CIC{}} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(RunConfig{
				Query: "q1", Protocol: p, Workers: 2, Rate: 8000,
				Duration: 1500 * time.Millisecond, FailureAt: 600 * time.Millisecond,
				Output: core.OutputTransactional, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.DuplicateUIDs != 0 {
				t.Fatalf("transactional output published %d duplicate results", res.DuplicateUIDs)
			}
			if res.Output.Visible == 0 {
				t.Fatal("no output became visible")
			}
			if res.Output.Emitted != res.Output.Visible+res.Output.Discarded+res.Output.Pending {
				t.Fatalf("output stats do not balance: %+v", res.Output)
			}
			if res.VisibilityP50 <= 0 {
				t.Fatal("visibility latency not computed")
			}
			t.Logf("%s: visible=%d discarded=%d pending=%d visP50=%v",
				p.Name(), res.Output.Visible, res.Output.Discarded, res.Output.Pending, res.VisibilityP50)
		})
	}
}

// TestImmediateOutputEndToEnd checks that the immediate mode records the
// baseline behaviour: output is collected, visibility equals emission, and
// failure-free runs publish each result once.
func TestImmediateOutputEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Run(RunConfig{
		Query: "q1", Protocol: protocol.Coordinated{}, Workers: 2, Rate: 8000,
		Duration: 1200 * time.Millisecond, Output: core.OutputImmediate, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicateUIDs != 0 {
		t.Fatalf("failure-free immediate run duplicated %d results", res.DuplicateUIDs)
	}
	if res.Output.Visible == 0 || res.Output.Visible != res.Output.Emitted {
		t.Fatalf("immediate mode should publish everything: %+v", res.Output)
	}
	if res.Output.Pending != 0 || res.Output.Discarded != 0 {
		t.Fatalf("immediate mode buffered or discarded output: %+v", res.Output)
	}
}

// TestRollbackScopeAnalysis checks the single-failure scope analysis: q1
// (no shuffling) must keep the average scope well below a global rollback,
// while the totals stay within bounds.
func TestRollbackScopeAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Run(RunConfig{
		Query: "q1", Protocol: protocol.Uncoordinated{}, Workers: 4, Rate: 8000,
		Duration: 1200 * time.Millisecond, AnalyzeRollbackScope: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Scope
	if sc.Instances != 3*4 {
		t.Fatalf("instances = %d, want 12", sc.Instances)
	}
	if sc.AvgScope < 1 || sc.MaxScope > sc.Instances {
		t.Fatalf("scope stats out of bounds: %+v", sc)
	}
	// q1 has no shuffling: a single failure must never drag in the whole
	// pipeline.
	if sc.AvgScope >= float64(sc.Instances) {
		t.Fatalf("q1 average scope %.1f equals a global rollback", sc.AvgScope)
	}
}

// TestCompressionEndToEnd verifies the harness knob reduces checkpoint
// store traffic on a stateful query. COOR is the protocol to measure:
// its blobs are pure operator state, while UNC blobs also carry the
// incompressible dedup-UID ring.
func TestCompressionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(compress bool) float64 {
		res, err := Run(RunConfig{
			Query: "q12", Protocol: protocol.Coordinated{}, Workers: 2, Rate: 6000,
			Duration: 1200 * time.Millisecond, Window: 200 * time.Millisecond,
			CompressCheckpoints: compress, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.SinkCount == 0 {
			t.Fatal("no output")
		}
		if res.Store.Puts == 0 {
			t.Fatal("no checkpoints stored")
		}
		// Bytes per PUT: robust against run-to-run checkpoint-count jitter.
		return float64(res.Store.PutBytes) / float64(res.Store.Puts)
	}
	plain := run(false)
	compressed := run(true)
	if compressed >= plain {
		t.Fatalf("compressed bytes/checkpoint %.0f >= plain %.0f", compressed, plain)
	}
}
