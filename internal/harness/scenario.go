package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"checkmate/internal/chaos"
	"checkmate/internal/core"
	"checkmate/internal/metrics"
	"checkmate/internal/protocol"
)

// The named hostile scenarios: each is a deterministic composition of the
// chaos plane (internal/chaos fault windows), the cluster failure domains
// and the workload knobs, expressed relative to the run duration D so the
// same scenario scales from a CI smoke to a full benchmark cell. Every
// scenario runs with transactional output so its point carries the
// exactly-once verdict (duplicate_uids == 0) alongside throughput, rounds
// completed/abandoned, degraded time and RTO.

// scenarioSpec is one registered hostile scenario.
type scenarioSpec struct {
	name string
	doc  string
	// apply mutates the base run configuration; d is the run duration and
	// ci the checkpoint interval, both already defaulted.
	apply func(cfg *RunConfig, d, ci time.Duration)
}

// scenarioRegistry returns the registered scenarios, sorted by name.
func scenarioRegistry() []scenarioSpec {
	specs := []scenarioSpec{
		{
			name: "store-brownout",
			doc:  "object store browns out for the middle half of the run (60% error rate + latency spikes); retries absorb it",
			apply: func(cfg *RunConfig, d, ci time.Duration) {
				cfg.Chaos.Brownout = []chaos.Window{{At: d / 4, For: d / 2}}
				cfg.Chaos.BrownoutRate = 0.6
				cfg.Chaos.LatencySpike = []chaos.Window{{At: d / 4, For: d / 2}}
			},
		},
		{
			name: "store-outage",
			doc:  "object store is fully out for 20% of the run; the engine degrades (drains without checkpointing) and resumes",
			apply: func(cfg *RunConfig, d, ci time.Duration) {
				cfg.Chaos.Outage = []chaos.Window{{At: 2 * d / 5, For: d / 5}}
			},
		},
		{
			name: "flapping-worker",
			doc:  "one worker crashes and recovers three times in quick succession",
			apply: func(cfg *RunConfig, d, ci time.Duration) {
				cfg.FailDomain = "flapping"
				cfg.FailWorker = 1
				cfg.FailCount = 3
				cfg.FailureAt = 3 * d / 10
				cfg.FailInterval = d / 8
			},
		},
		{
			name: "rack-loss-during-round",
			doc:  "two co-racked workers die mid-checkpoint-round, while a round is collecting reports",
			apply: func(cfg *RunConfig, d, ci time.Duration) {
				cfg.FailDomain = "rack"
				cfg.FailWorker = 1
				cfg.FailRackSize = 2
				// Land the failure mid-round: past the round boundary at
				// 5x the interval, before the one at 6x.
				cfg.FailureAt = 5*ci + ci/2
			},
		},
		{
			name: "straggler-skew",
			doc:  "hot-key skew (80% hot) plus a straggling worker and exchange jitter",
			apply: func(cfg *RunConfig, d, ci time.Duration) {
				cfg.HotRatio = 0.8
				cfg.StragglerDelay = 200 * time.Microsecond
				cfg.StragglerWorker = 0
				cfg.Chaos.ExchangeJitter = 100 * time.Microsecond
			},
		},
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].name < specs[b].name })
	return specs
}

// Scenarios lists the registered hostile-scenario names, sorted.
func Scenarios() []string {
	specs := scenarioRegistry()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.name
	}
	return names
}

// ScenarioDoc returns the one-line description of a named scenario ("" if
// unknown).
func ScenarioDoc(name string) string {
	for _, s := range scenarioRegistry() {
		if s.name == name {
			return s.doc
		}
	}
	return ""
}

// ScenarioConfig selects one hostile scenario run.
type ScenarioConfig struct {
	// Scenario is the registered scenario name (see Scenarios).
	Scenario string
	// Protocol is the checkpointing protocol under test (must checkpoint:
	// the scenarios assert exactly-once via transactional output).
	Protocol core.Protocol
	// Query is the workload (default q3, the stateful join).
	Query string
	// Workers is the parallelism (default 4).
	Workers int
	// Rate is the input rate in events/second (default 8000).
	Rate float64
	// Duration is the run length D the scenario's fault windows scale
	// with (default 3s).
	Duration time.Duration
	// CheckpointInterval defaults to Duration/12 (so every scenario sees
	// plenty of rounds).
	CheckpointInterval time.Duration
	// Seed drives all deterministic randomness, fault injection included
	// (default 1).
	Seed int64
	// Trace enables span collection for the run.
	Trace bool
	// TracePath writes the Chrome trace there after the run (requires
	// Trace).
	TracePath string
}

// ScenarioPoint is one measured scenario cell, shaped for
// BENCH_scenarios.json.
type ScenarioPoint struct {
	Scenario string `json:"scenario"`
	Protocol string `json:"protocol"`
	Query    string `json:"query"`
	Workers  int    `json:"workers"`
	// Records is the sink output count; Seconds the measured wall time.
	Records       uint64  `json:"records"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`
	// Round/checkpoint progress under fire.
	RoundsCompleted    uint64 `json:"rounds_completed,omitempty"`
	RoundsAbandoned    uint64 `json:"rounds_abandoned,omitempty"`
	Checkpoints        int    `json:"checkpoints"`
	InvalidCheckpoints int    `json:"invalid_checkpoints,omitempty"`
	// Failure/recovery accounting (worker-failure scenarios).
	Failures  int     `json:"failures,omitempty"`
	Recovered bool    `json:"recovered,omitempty"`
	RTOMillis float64 `json:"rto_ms,omitempty"`
	// Degraded-mode ledger (sustained-outage scenarios).
	DegradedEntries uint64  `json:"degraded_entries,omitempty"`
	DegradedMillis  float64 `json:"degraded_ms,omitempty"`
	UploadsShed     uint64  `json:"uploads_shed,omitempty"`
	// Shared retry-policy counters.
	RetryAttempts      uint64  `json:"retry_attempts,omitempty"`
	Retries            uint64  `json:"retries,omitempty"`
	RetryExhausted     uint64  `json:"retry_exhausted,omitempty"`
	RetryBackoffMillis float64 `json:"retry_backoff_ms,omitempty"`
	// Injected-fault counters from the chaos plan.
	InjectedStoreErrors uint64 `json:"injected_store_errors,omitempty"`
	InjectedStoreSpikes uint64 `json:"injected_store_spikes,omitempty"`
	InjectedFsyncStalls uint64 `json:"injected_fsync_stalls,omitempty"`
	// Exactly-once verdict: results the external transactional consumer
	// saw, duplicates among them (must be 0), and replay-side dedup drops.
	OutputVisible uint64 `json:"output_visible"`
	DuplicateUIDs int    `json:"duplicate_uids"`
	DupDropped    uint64 `json:"dup_dropped,omitempty"`
	ExactlyOnce   bool   `json:"exactly_once"`
}

// scenarioRunConfig builds the RunConfig of one scenario cell (defaults
// applied, scenario mutation included).
func scenarioRunConfig(sc ScenarioConfig) (RunConfig, error) {
	var spec *scenarioSpec
	for _, s := range scenarioRegistry() {
		if s.name == sc.Scenario {
			spec = &s
			break
		}
	}
	if spec == nil {
		return RunConfig{}, fmt.Errorf("harness: unknown scenario %q (want one of %s)",
			sc.Scenario, strings.Join(Scenarios(), ", "))
	}
	if sc.Protocol == nil {
		return RunConfig{}, fmt.Errorf("harness: scenario %q needs a checkpointing protocol", sc.Scenario)
	}
	if sc.Protocol.Kind() == core.KindNone {
		return RunConfig{}, fmt.Errorf("harness: scenario %q asserts exactly-once output; protocol %s does not checkpoint",
			sc.Scenario, sc.Protocol.Name())
	}
	if sc.Query == "" {
		sc.Query = "q3"
	}
	if sc.Workers <= 0 {
		sc.Workers = 4
	}
	if sc.Rate <= 0 {
		sc.Rate = 8000
	}
	if sc.Duration <= 0 {
		sc.Duration = 3 * time.Second
	}
	if sc.CheckpointInterval <= 0 {
		sc.CheckpointInterval = sc.Duration / 12
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	cfg := RunConfig{
		Query:              sc.Query,
		Protocol:           sc.Protocol,
		Workers:            sc.Workers,
		Rate:               sc.Rate,
		Duration:           sc.Duration,
		CheckpointInterval: sc.CheckpointInterval,
		Seed:               sc.Seed,
		Output:             core.OutputTransactional,
		Trace:              sc.Trace,
	}
	spec.apply(&cfg, sc.Duration, sc.CheckpointInterval)
	return cfg, nil
}

// RunScenario runs one hostile scenario cell and reduces it to a point.
// Every point carries the exactly-once verdict: the run collects output
// transactionally and counts result UIDs the external consumer observed
// twice — zero under a correct protocol, failures and faults included.
func RunScenario(sc ScenarioConfig) (ScenarioPoint, error) {
	cfg, err := scenarioRunConfig(sc)
	if err != nil {
		return ScenarioPoint{}, err
	}
	res, err := Run(cfg)
	if err != nil {
		return ScenarioPoint{}, fmt.Errorf("harness: scenario %s/%s: %w", sc.Scenario, sc.Protocol.Name(), err)
	}
	if sc.TracePath != "" && res.Trace != nil {
		if err := res.Trace.WriteChromeFile(sc.TracePath); err != nil {
			return ScenarioPoint{}, fmt.Errorf("harness: scenario trace: %w", err)
		}
	}
	sum := res.Summary
	secs := cfg.Duration.Seconds()
	pt := ScenarioPoint{
		Scenario:            sc.Scenario,
		Protocol:            sc.Protocol.Name(),
		Query:               cfg.Query,
		Workers:             cfg.Workers,
		Records:             sum.SinkCount,
		Seconds:             secs,
		P50Millis:           ms(sum.Timeline.P50),
		P99Millis:           ms(sum.Timeline.P99),
		RoundsCompleted:     res.Chaos.RoundsCompleted,
		RoundsAbandoned:     res.Chaos.RoundsAbandoned,
		Checkpoints:         sum.TotalCheckpoints,
		InvalidCheckpoints:  sum.InvalidCheckpoints,
		Failures:            sum.Failures,
		Recovered:           sum.Recovered,
		RTOMillis:           ms(sum.RecoveryTime),
		DegradedEntries:     res.Chaos.DegradedEntries,
		DegradedMillis:      ms(res.Chaos.DegradedTime),
		UploadsShed:         res.Chaos.UploadsShed,
		RetryAttempts:       res.Chaos.Retry.Attempts,
		Retries:             res.Chaos.Retry.Retries,
		RetryExhausted:      res.Chaos.Retry.Exhausted,
		RetryBackoffMillis:  ms(res.Chaos.Retry.Backoff),
		InjectedStoreErrors: res.Chaos.Injected.StoreErrors,
		InjectedStoreSpikes: res.Chaos.Injected.StoreSpikes,
		InjectedFsyncStalls: res.Chaos.Injected.FsyncStalls,
		OutputVisible:       res.Output.Visible,
		DuplicateUIDs:       res.DuplicateUIDs,
		DupDropped:          sum.DupDropped,
		ExactlyOnce:         res.DuplicateUIDs == 0,
	}
	if secs > 0 {
		pt.RecordsPerSec = float64(sum.SinkCount) / secs
	}
	return pt, nil
}

// scenarioProtocols is the protocol axis of the scenario matrix: one
// protocol per checkpointing family (coordinated, uncoordinated,
// communication-induced).
func scenarioProtocols() []core.Protocol {
	return []core.Protocol{protocol.Coordinated{}, protocol.Uncoordinated{}, protocol.CIC{}}
}

// ScenarioTable runs the full hostile-scenario matrix (every registered
// scenario x COOR/UNC/CIC) and tabulates it — the benchall "scenarios"
// experiment.
func (s *Suite) ScenarioTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		"Robustness: hostile scenarios x protocols (q3, transactional output)",
		"Scenario", "Protocol", "Records/s", "p99(ms)", "Rounds", "Abandoned",
		"Degraded(ms)", "Retries", "RTO(ms)", "ExactlyOnce")
	for _, name := range Scenarios() {
		for _, p := range scenarioProtocols() {
			s.logf("scenario %-22s %-4s", name, p.Name())
			pt, err := RunScenario(ScenarioConfig{
				Scenario: name,
				Protocol: p,
				Duration: s.dur(36),
				Seed:     s.Seed,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(pt.Scenario, pt.Protocol,
				fmt.Sprintf("%.0f", pt.RecordsPerSec),
				fmt.Sprintf("%.1f", pt.P99Millis),
				pt.RoundsCompleted, pt.RoundsAbandoned,
				fmt.Sprintf("%.0f", pt.DegradedMillis),
				pt.Retries,
				fmt.Sprintf("%.1f", pt.RTOMillis),
				pt.ExactlyOnce)
		}
	}
	return t, nil
}
