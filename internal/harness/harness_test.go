package harness

import (
	"io"
	"strings"
	"testing"
	"time"

	"checkmate/internal/protocol"
)

func quickRun(t *testing.T, cfg RunConfig) RunResult {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Query: "q1", Protocol: protocol.None{}}); err == nil {
		t.Fatal("zero rate should fail")
	}
	if _, err := Run(RunConfig{Query: "bogus", Protocol: protocol.None{}, Rate: 100, Workers: 2}); err == nil {
		t.Fatal("unknown query should fail")
	}
}

func TestRunQ1AllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol sweep is slow")
	}
	for _, p := range protocol.All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			res := quickRun(t, RunConfig{
				Query: "q1", Protocol: p, Workers: 2, Rate: 3000,
				Duration: 800 * time.Millisecond, Seed: 2,
			})
			if res.Summary.SinkCount == 0 {
				t.Fatal("no records reached the sink")
			}
			if !res.Sustainable {
				t.Fatalf("3k ev/s on q1 should be sustainable (lag %v)", res.MaxLag)
			}
		})
	}
}

func TestRunQ3WithFailure(t *testing.T) {
	res := quickRun(t, RunConfig{
		Query: "q3", Protocol: protocol.Uncoordinated{}, Workers: 2, Rate: 4000,
		Duration: 1200 * time.Millisecond, FailureAt: 400 * time.Millisecond,
		CheckpointInterval: 100 * time.Millisecond, Seed: 3,
	})
	if res.Summary.Failures != 1 {
		t.Fatalf("failures = %d", res.Summary.Failures)
	}
	if res.Summary.RestartTime <= 0 {
		t.Fatal("no restart time recorded")
	}
	if res.Summary.TotalCheckpoints == 0 {
		t.Fatal("no checkpoints accounted")
	}
}

func TestRunQ8AndQ12(t *testing.T) {
	if testing.Short() {
		t.Skip("windowed query runs are slow")
	}
	for _, q := range []string{"q8", "q12"} {
		res := quickRun(t, RunConfig{
			Query: q, Protocol: protocol.Coordinated{}, Workers: 2, Rate: 3000,
			Duration: 800 * time.Millisecond, Window: 200 * time.Millisecond,
			CheckpointInterval: 150 * time.Millisecond, Seed: 4,
		})
		if res.Summary.SinkCount == 0 {
			t.Fatalf("%s: no sink records", q)
		}
	}
}

func TestRunCyclic(t *testing.T) {
	res := quickRun(t, RunConfig{
		Query: QueryCyclic, Protocol: protocol.Uncoordinated{}, Workers: 2, Rate: 3000,
		Duration: 800 * time.Millisecond, Nodes: 500,
		CheckpointInterval: 150 * time.Millisecond, Seed: 5,
	})
	if res.Summary.SinkCount == 0 {
		t.Fatal("cyclic query produced no reachability records")
	}
}

func TestRunCyclicRejectsCOOR(t *testing.T) {
	if _, err := Run(RunConfig{
		Query: QueryCyclic, Protocol: protocol.Coordinated{}, Workers: 2, Rate: 1000,
		Duration: 500 * time.Millisecond,
	}); err == nil {
		t.Fatal("COOR on cyclic query must fail")
	}
}

func TestRunUnsustainableRateDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("overload run is slow")
	}
	// Far beyond what 2 workers can do with heavy synthetic per-byte work
	// (q1 consumes the bid stream: 92% of the generated mix).
	res := quickRun(t, RunConfig{
		Query: "q1", Protocol: protocol.CIC{}, Workers: 2, Rate: 2_000_000,
		Duration: 600 * time.Millisecond, Seed: 6, NetWorkFactor: 256,
	})
	if res.Sustainable {
		t.Fatalf("2M ev/s on 2 workers reported sustainable (lag %v)", res.MaxLag)
	}
}

func TestFindMST(t *testing.T) {
	if testing.Short() {
		t.Skip("MST search is slow")
	}
	mst, err := FindMST(MSTConfig{
		Base:          RunConfig{Query: "q1", Protocol: protocol.None{}, Workers: 2, Seed: 7},
		ProbeDuration: 500 * time.Millisecond,
		StartRate:     2000,
		MaxRate:       64_000,
		Bisections:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mst < 2000 {
		t.Fatalf("MST = %.0f, expected at least the start rate", mst)
	}
}

func TestMSTCache(t *testing.T) {
	if testing.Short() {
		t.Skip("MST search is slow")
	}
	c := NewMSTCache()
	cfg := MSTConfig{
		Base:          RunConfig{Query: "q1", Protocol: protocol.None{}, Workers: 2, Seed: 8},
		ProbeDuration: 400 * time.Millisecond,
		StartRate:     2000,
		MaxRate:       16_000,
		Bisections:    1,
	}
	v1, err := c.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	v2, err := c.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("cache returned different value: %v vs %v", v1, v2)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("second Get did not hit the cache")
	}
}

func TestTableIFeaturesStatic(t *testing.T) {
	s := NewSuite()
	s.Out = io.Discard
	out := s.TableIFeatures().String()
	for _, want := range []string{"Blocking (markers)", "Forced checkpoints", "COOR", "CIC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnalignedCoordinated(t *testing.T) {
	res := quickRun(t, RunConfig{
		Query: "q12", Protocol: protocol.UnalignedCoordinated{}, Workers: 2, Rate: 5000,
		Duration: 1 * time.Second, FailureAt: 350 * time.Millisecond,
		CheckpointInterval: 120 * time.Millisecond, Seed: 12,
	})
	if res.Summary.SinkCount == 0 {
		t.Fatal("no output")
	}
	if res.Summary.Failures != 1 || res.Summary.RestartTime <= 0 {
		t.Fatalf("failure handling: %+v", res.Summary)
	}
	if res.Summary.TotalCheckpoints == 0 {
		t.Fatal("no completed unaligned rounds")
	}
}

func TestRunUnalignedOnCyclicQuery(t *testing.T) {
	res := quickRun(t, RunConfig{
		Query: QueryCyclic, Protocol: protocol.UnalignedCoordinated{}, Workers: 2, Rate: 3000,
		Duration: 800 * time.Millisecond, Nodes: 500,
		CheckpointInterval: 150 * time.Millisecond, Seed: 13,
	})
	if res.Summary.SinkCount == 0 {
		t.Fatal("unaligned coordinated produced no output on the cyclic query")
	}
	if res.Summary.MarkerMessages == 0 {
		t.Fatal("no markers circulated through the feedback loop")
	}
}

func TestRunBCSForcesMoreCheckpointsThanHMNR(t *testing.T) {
	if testing.Short() {
		t.Skip("policy comparison runs are slow")
	}
	run := func(p interface {
		Name() string
	}) RunResult {
		proto, err := protocol.ByName(p.Name())
		if err != nil {
			t.Fatal(err)
		}
		return quickRun(t, RunConfig{
			Query: "q3", Protocol: proto, Workers: 2, Rate: 8000,
			Duration: 900 * time.Millisecond, CheckpointInterval: 200 * time.Millisecond,
			Seed: 14,
		})
	}
	bcs := run(protocol.BCS{})
	hmnr := run(protocol.CIC{})
	if bcs.Summary.ForcedCkpts == 0 {
		t.Fatal("BCS took no forced checkpoints in a multi-stage pipeline")
	}
	if bcs.Summary.ForcedCkpts <= hmnr.Summary.ForcedCkpts {
		t.Fatalf("BCS forced %d <= HMNR forced %d; expected far more",
			bcs.Summary.ForcedCkpts, hmnr.Summary.ForcedCkpts)
	}
	// And BCS's piggyback is much smaller.
	if bcs.Summary.OverheadRatio >= hmnr.Summary.OverheadRatio {
		t.Fatalf("BCS overhead %.2f >= HMNR overhead %.2f",
			bcs.Summary.OverheadRatio, hmnr.Summary.OverheadRatio)
	}
}

// TestSuiteSmoke exercises one tiny suite cell end to end (heavily reduced
// so it stays fast).
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke test is slow")
	}
	s := NewSuite()
	s.Out = io.Discard
	s.Scale = 0.02 // 1.2 s runs
	s.Workers = []int{2}
	s.TableWorkers = []int{2}
	s.TimelineWorkers = []int{2}
	s.CyclicWorkers = []int{2}
	s.Queries = []string{"q1"}
	s.SkewRatios = []float64{0.2}
	s.SkewWorkers = 2
	s.MaxRate = 32_000

	tab, err := s.Fig7MST()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("Fig7 rows = %d", len(tab.Rows))
	}
	ov, err := s.TableIIOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.Rows) != 1 {
		t.Fatalf("TableII rows = %d", len(ov.Rows))
	}
	rt, err := s.Fig11RestartTime()
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Rows) != 1 {
		t.Fatalf("Fig11 rows = %d", len(rt.Rows))
	}
}
