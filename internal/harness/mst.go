package harness

import (
	"fmt"
	"sync"
	"time"
)

// MSTConfig controls the maximum-sustainable-throughput search.
type MSTConfig struct {
	// Base is the run configuration; Rate and Duration are overridden.
	Base RunConfig
	// ProbeDuration is the length of each probe run.
	ProbeDuration time.Duration
	// StartRate seeds the search.
	StartRate float64
	// MaxRate caps the search (memory/CPU guard).
	MaxRate float64
	// Bisections is the number of binary-search refinement steps.
	Bisections int
}

func (c *MSTConfig) applyDefaults() {
	if c.ProbeDuration <= 0 {
		c.ProbeDuration = 1500 * time.Millisecond
	}
	if c.StartRate <= 0 {
		c.StartRate = 5000
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 2_000_000
	}
	if c.Bisections <= 0 {
		c.Bisections = 4
	}
}

// FindMST searches for the maximum sustainable throughput of the base
// configuration: the highest input rate at which the sources keep up with
// the arrival schedule (paper §V, following Karimov et al.).
func FindMST(cfg MSTConfig) (float64, error) {
	cfg.applyDefaults()
	probe := func(rate float64) (bool, error) {
		rc := cfg.Base
		rc.Rate = rate
		rc.Duration = cfg.ProbeDuration
		rc.FailureAt = 0
		res, err := Run(rc)
		if err != nil {
			return false, err
		}
		return res.Sustainable, nil
	}

	lo := 0.0
	hi := cfg.StartRate
	// Grow until unsustainable (or the cap).
	for {
		ok, err := probe(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		if hi >= cfg.MaxRate {
			return lo, nil
		}
		hi *= 2
		if hi > cfg.MaxRate {
			hi = cfg.MaxRate
		}
	}
	if lo == 0 {
		// Even the start rate is unsustainable: shrink downward once to
		// give the bisection a sustainable floor.
		lo = hi / 16
	}
	for i := 0; i < cfg.Bisections; i++ {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo <= 0 {
		return 0, fmt.Errorf("harness: no sustainable rate found below %v", hi)
	}
	return lo, nil
}

// mstKey identifies a cached MST measurement.
type mstKey struct {
	query    string
	protocol string
	workers  int
}

// MSTCache memoizes MST searches across experiments (the paper reuses the
// measured MST of each (query, protocol, parallelism) cell for its 80%- and
// 50%-load runs).
type MSTCache struct {
	mu    sync.Mutex
	cache map[mstKey]float64
}

// NewMSTCache returns an empty cache.
func NewMSTCache() *MSTCache { return &MSTCache{cache: make(map[mstKey]float64)} }

// Get returns the cached MST or runs the search.
func (c *MSTCache) Get(cfg MSTConfig) (float64, error) {
	key := mstKey{cfg.Base.Query, cfg.Base.Protocol.Name(), cfg.Base.Workers}
	c.mu.Lock()
	if v, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()
	v, err := FindMST(cfg)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.cache[key] = v
	c.mu.Unlock()
	return v, nil
}
