package harness

import (
	"strings"
	"testing"
	"time"

	"checkmate/internal/chaos"
	"checkmate/internal/core"
	"checkmate/internal/protocol"
)

// The hostile-scenario tests. Unlike the rest of the heavy harness suite
// these deliberately run in -short mode too: they are the robustness
// regression gate (CI runs two of them under -race), and each is a single
// short drain.

// TestChaosOutageExactlyOnce drives every checkpointing protocol through a
// total object-store outage window with transactional output: uploads
// exhaust their retries, the engine degrades and resumes, and the external
// consumer must still never see a result twice.
func TestChaosOutageExactlyOnce(t *testing.T) {
	for _, p := range []core.Protocol{
		protocol.Coordinated{}, protocol.UnalignedCoordinated{},
		protocol.Uncoordinated{}, protocol.CIC{},
	} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(RunConfig{
				Query: "q1", Protocol: p, Workers: 2, Rate: 8000,
				Duration: 1500 * time.Millisecond, CheckpointInterval: 200 * time.Millisecond,
				Output: core.OutputTransactional, Seed: 7,
				Chaos: chaos.Plan{
					Outage: []chaos.Window{{At: 500 * time.Millisecond, For: 300 * time.Millisecond}},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.DuplicateUIDs != 0 {
				t.Fatalf("outage run published %d duplicate results", res.DuplicateUIDs)
			}
			if res.Output.Visible == 0 {
				t.Fatal("no output became visible")
			}
			if res.Chaos.Injected.StoreErrors == 0 {
				t.Fatal("outage window injected no store errors")
			}
			if res.Chaos.Retry.Retries == 0 {
				t.Fatal("retry policy never retried through the outage")
			}
			t.Logf("%s: visible=%d retries=%d exhausted=%d degraded=%d(%v)",
				p.Name(), res.Output.Visible, res.Chaos.Retry.Retries,
				res.Chaos.Retry.Exhausted, res.Chaos.DegradedEntries, res.Chaos.DegradedTime)
		})
	}
}

// TestChaosDegradedSuspendResume is the degraded-mode contract end to end:
// a sustained outage flips the engine into degraded mode, records keep
// draining while checkpointing is suspended, the prober exits degraded mode
// once the store answers, and a worker failure AFTER the episode recovers
// from a durable line written post-resume — with exactly-once output
// throughout.
func TestChaosDegradedSuspendResume(t *testing.T) {
	res, err := Run(RunConfig{
		Query: "q1", Protocol: protocol.Coordinated{}, Workers: 2, Rate: 8000,
		Duration: 2200 * time.Millisecond, CheckpointInterval: 200 * time.Millisecond,
		Output: core.OutputTransactional, Seed: 7,
		FailureAt: 1800 * time.Millisecond,
		Chaos: chaos.Plan{
			Outage: []chaos.Window{{At: 600 * time.Millisecond, For: 500 * time.Millisecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.DegradedEntries == 0 {
		t.Fatal("sustained outage never entered degraded mode")
	}
	if res.Chaos.Degraded {
		t.Fatal("engine still degraded after the store came back")
	}
	if res.Chaos.Retry.Exhausted == 0 {
		t.Fatal("degraded mode without retry exhaustion")
	}
	if res.Summary.SinkCount == 0 {
		t.Fatal("engine stopped draining during the outage")
	}
	if !res.Summary.Recovered {
		t.Fatal("post-outage failure did not recover from a durable line")
	}
	if res.DuplicateUIDs != 0 {
		t.Fatalf("degraded episode leaked %d duplicate results", res.DuplicateUIDs)
	}
	t.Logf("degraded %v over %d episode(s), shed=%d, sink=%d, recovered=%v",
		res.Chaos.DegradedTime, res.Chaos.DegradedEntries,
		res.Chaos.UploadsShed, res.Summary.SinkCount, res.Summary.Recovered)
}

// TestChaosRoundWatchdog starves a coordinated round of its reports (every
// upload dies in an outage stretching to the end of the run) and checks the
// watchdog abandons the stalled round instead of wedging round initiation
// forever.
func TestChaosRoundWatchdog(t *testing.T) {
	res, err := Run(RunConfig{
		Query: "q1", Protocol: protocol.Coordinated{}, Workers: 2, Rate: 8000,
		Duration: 1500 * time.Millisecond, CheckpointInterval: 150 * time.Millisecond,
		Seed: 7,
		Chaos: chaos.Plan{
			Outage: []chaos.Window{{At: 100 * time.Millisecond, For: 2 * time.Second}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.RoundsAbandoned == 0 {
		t.Fatal("watchdog abandoned no round despite an unresolvable outage")
	}
	if res.Chaos.DegradedEntries == 0 {
		t.Fatal("outage to end of run never entered degraded mode")
	}
	if res.Summary.SinkCount == 0 {
		t.Fatal("engine stopped draining under the outage")
	}
}

// TestChaosFlappingWorkerExactlyOnce crashes the same worker three times in
// quick succession and checks every recovery is clean: all three failures
// recovered, no duplicate output.
func TestChaosFlappingWorkerExactlyOnce(t *testing.T) {
	for _, p := range []core.Protocol{protocol.Coordinated{}, protocol.Uncoordinated{}} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(RunConfig{
				Query: "q1", Protocol: p, Workers: 2, Rate: 8000,
				Duration: 1800 * time.Millisecond, CheckpointInterval: 200 * time.Millisecond,
				Output: core.OutputTransactional, Seed: 7,
				FailDomain: "flapping", FailWorker: 1, FailCount: 3,
				FailureAt: 400 * time.Millisecond, FailInterval: 250 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Summary.Failures != 3 {
				t.Fatalf("failures = %d, want 3", res.Summary.Failures)
			}
			if !res.Summary.Recovered {
				t.Fatal("flapping worker never recovered")
			}
			if res.DuplicateUIDs != 0 {
				t.Fatalf("flapping published %d duplicate results", res.DuplicateUIDs)
			}
			if res.Output.Visible == 0 {
				t.Fatal("no output became visible")
			}
		})
	}
}

// TestChaosScenarioRegistry pins the registered scenario names and the
// config validation of the scenario runner.
func TestChaosScenarioRegistry(t *testing.T) {
	names := Scenarios()
	want := []string{
		"flapping-worker", "rack-loss-during-round",
		"store-brownout", "store-outage", "straggler-skew",
	}
	if len(names) != len(want) {
		t.Fatalf("scenarios = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("scenarios = %v, want %v", names, want)
		}
		if ScenarioDoc(want[i]) == "" {
			t.Fatalf("scenario %s has no doc", want[i])
		}
	}
	if _, err := RunScenario(ScenarioConfig{Scenario: "nope", Protocol: protocol.Coordinated{}}); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario error = %v", err)
	}
	if _, err := RunScenario(ScenarioConfig{Scenario: "store-outage", Protocol: protocol.None{}}); err == nil {
		t.Fatal("NONE protocol must be rejected: scenarios assert exactly-once")
	}
	if _, err := RunScenario(ScenarioConfig{Scenario: "store-outage"}); err == nil {
		t.Fatal("missing protocol must be rejected")
	}
}

// TestChaosScenarioBrownoutSmoke is the CI -race smoke: one short
// store-brownout cell must complete exactly-once with faults actually
// injected.
func TestChaosScenarioBrownoutSmoke(t *testing.T) {
	pt, err := RunScenario(ScenarioConfig{
		Scenario: "store-brownout", Protocol: protocol.Coordinated{},
		Query: "q1", Workers: 2, Rate: 6000, Duration: 1200 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.ExactlyOnce || pt.DuplicateUIDs != 0 {
		t.Fatalf("brownout cell not exactly-once: %+v", pt)
	}
	if pt.Records == 0 || pt.OutputVisible == 0 {
		t.Fatalf("brownout cell produced no output: %+v", pt)
	}
	if pt.InjectedStoreErrors+pt.InjectedStoreSpikes == 0 {
		t.Fatal("brownout window injected nothing")
	}
}

// TestChaosScenarioFlappingSmoke is the second CI -race smoke: one short
// flapping-worker cell, all flaps recovered, exactly-once.
func TestChaosScenarioFlappingSmoke(t *testing.T) {
	pt, err := RunScenario(ScenarioConfig{
		Scenario: "flapping-worker", Protocol: protocol.Uncoordinated{},
		Query: "q1", Workers: 2, Rate: 6000, Duration: 1600 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.ExactlyOnce {
		t.Fatalf("flapping cell not exactly-once: %+v", pt)
	}
	if pt.Failures != 3 || !pt.Recovered {
		t.Fatalf("flapping cell failures=%d recovered=%v, want 3/true", pt.Failures, pt.Recovered)
	}
}

// TestChaosScenarioOutageDegrades checks the store-outage scenario actually
// exercises the degraded path at its default shape.
func TestChaosScenarioOutageDegrades(t *testing.T) {
	pt, err := RunScenario(ScenarioConfig{
		Scenario: "store-outage", Protocol: protocol.Coordinated{},
		Query: "q1", Workers: 2, Rate: 6000, Duration: 1500 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.DegradedEntries == 0 {
		t.Fatalf("store-outage never degraded: %+v", pt)
	}
	if !pt.ExactlyOnce {
		t.Fatalf("store-outage not exactly-once: %+v", pt)
	}
	if pt.Records == 0 {
		t.Fatal("store-outage produced no output")
	}
}
