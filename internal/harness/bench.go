package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/metrics"
	"checkmate/internal/objstore"
	"checkmate/internal/trace"
	"checkmate/internal/wal"
)

// BenchConfig describes one data-plane throughput measurement: a fixed
// record volume scheduled (almost) instantly, drained as fast as the engine
// can, so the measured rate is the engine's capacity rather than the
// workload's arrival rate.
type BenchConfig struct {
	// Query is a workload name accepted by RunConfig.Query.
	Query string
	// Protocol is the checkpointing protocol under which to measure.
	Protocol core.Protocol
	// Workers is the parallelism. Defaults to 4.
	Workers int
	// CPUs pins runtime.GOMAXPROCS for the measurement (restored after),
	// the cores axis of the scale grid. 0 keeps the process setting.
	CPUs int
	// Records is the total record volume to drain. Defaults to 100_000.
	Records int
	// BatchMaxRecords is the exchange batch size (0/1 = unbatched).
	BatchMaxRecords int
	// NetWorkFactor is the synthetic per-byte network cost; defaults to the
	// harness default (4) so bench numbers are comparable to Run results.
	NetWorkFactor int
	// CheckpointInterval defaults to 250ms — a few rounds per drain.
	CheckpointInterval time.Duration
	// Seed drives workload generation. Defaults to 1.
	Seed int64
	// Timeout bounds the drain. Defaults to 120s.
	Timeout time.Duration
	// Repeat runs the measurement this many times and reports the run with
	// the median throughput, damping scheduler noise on shared machines.
	// Defaults to 1.
	Repeat int
	// NoFramePool disables the engine's frame pool for this measurement
	// (process-wide while it runs), making every envelope a fresh heap
	// allocation — the pre-pool behaviour. The alloc table uses it to show
	// the pooled-versus-unpooled delta on identical code.
	NoFramePool bool
	// SyncSnapshots serializes checkpoint state on the processing
	// goroutine — the pre-async baseline the pause table's A/B rows
	// compare against.
	SyncSnapshots bool
	// DeltaCheckpoints persists keyed state as base-plus-delta chains, the
	// large-state configuration whose steady-state capture pause is
	// O(dirty-set).
	DeltaCheckpoints bool
	// Durable runs the measurement over the real filesystem durability
	// tier: disk-backed object store plus, for the logging protocols, a
	// WAL behind the message log. Files live in a fresh temp directory
	// removed after the measurement.
	Durable bool
	// WALSync is the WAL sync policy of a durable measurement ("always",
	// "group" or "interval"; default "group").
	WALSync string
	// Trace enables the checkpoint-lifecycle span collector during the
	// measurement — the traced side of the tracing-overhead A/B.
	Trace bool
	// SpillState runs keyed state on the spillable backend (bounded
	// resident overlay over mmap'd segments); SpillMaxMB / SpillMaxEntries
	// budget each instance's overlay (0 = statestore defaults). The drain
	// loop then samples peak heap and mapped bytes, the bounded-RSS
	// evidence of the spill table.
	SpillState      bool
	SpillMaxMB      int
	SpillMaxEntries int
	// MemSample turns on the drain-loop peak-memory sampling without
	// spilling — the resident baseline rows of the spill table, whose RSS
	// grows with total state. Implied by SpillState.
	MemSample bool
}

// BenchPoint is one machine-readable throughput measurement, the unit of
// the committed BENCH_throughput.json trajectory.
type BenchPoint struct {
	Query           string `json:"query"`
	Protocol        string `json:"protocol"`
	BatchMaxRecords int    `json:"batch_max_records"`
	Workers         int    `json:"workers"`
	// CPUs is the effective runtime.GOMAXPROCS the point ran under — read
	// back from the runtime, never assumed. SpeedupVs1CPU relates the
	// point's throughput to the same configuration's 1-cpu measurement
	// (filled by the grid writer; 0 when no 1-cpu sibling exists).
	CPUs            int     `json:"cpus,omitempty"`
	SpeedupVs1CPU   float64 `json:"speedup_vs_1cpu,omitempty"`
	Records         uint64  `json:"records"`
	Seconds         float64 `json:"seconds"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	P50Millis       float64 `json:"p50_ms"`
	P99Millis       float64 `json:"p99_ms"`
	PayloadBytes    uint64  `json:"payload_bytes"`
	ProtocolBytes   uint64  `json:"protocol_bytes"`
	OverheadRatio   float64 `json:"overhead_ratio"`
	DataMessages    uint64  `json:"data_messages"`
	BatchesSent     uint64  `json:"batches_sent"`
	AvgBatchRecords float64 `json:"avg_batch_records"`
	Checkpoints     uint64  `json:"checkpoints"`
	// Allocation accounting over the drain (runtime.ReadMemStats deltas,
	// process-wide, normalized by sink records). It separates protocol
	// overhead from GC overhead: a protocol comparison is only meaningful
	// when the runtime underneath allocates the same way at every point.
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
	GCCycles        uint32  `json:"gc_cycles"`
	GCPauseTotalMs  float64 `json:"gc_pause_total_ms"`
	// Checkpoint pause profile (asynchronous snapshots). SyncSnapshots and
	// DeltaCheckpoints identify the A/B row; the pause columns measure the
	// synchronous stall each checkpoint imposed on its processing
	// goroutine, the off-thread materialize/upload phases, and the p99
	// sink-latency delta between timeline buckets containing a checkpoint
	// and checkpoint-free ones.
	SyncSnapshots     bool    `json:"sync_snapshots"`
	DeltaCheckpoints  bool    `json:"delta_checkpoints"`
	SyncPauses        uint64  `json:"sync_pauses"`
	MaxSyncPauseMs    float64 `json:"max_sync_pause_ms"`
	MeanSyncPauseMs   float64 `json:"mean_sync_pause_ms"`
	P99SyncPauseMs    float64 `json:"p99_sync_pause_ms"`
	MeanMaterializeMs float64 `json:"mean_materialize_ms"`
	MeanUploadMs      float64 `json:"mean_upload_ms"`
	CkptP99DeltaMs    float64 `json:"ckpt_p99_delta_ms"`
	// Durability columns (zero/absent unless the point ran durable).
	// WALFsyncs/WALBytes count the message-log WAL's fsyncs and bytes
	// written; StoreFsyncs counts the disk object store's fsyncs. The
	// fsync-per-append ratio is the group-commit amortization the durable
	// table demonstrates.
	// Traced marks the point as measured with the span collector enabled
	// (the tracing-overhead A/B); TraceEvents counts the spans collected.
	Traced      bool   `json:"traced,omitempty"`
	TraceEvents uint64 `json:"trace_events,omitempty"`
	Durable     bool   `json:"durable,omitempty"`
	WALSync     string `json:"wal_sync,omitempty"`
	WALAppends  uint64 `json:"wal_appends,omitempty"`
	WALFsyncs   uint64 `json:"wal_fsyncs,omitempty"`
	WALBytes    uint64 `json:"wal_bytes,omitempty"`
	StoreFsyncs uint64 `json:"store_fsyncs,omitempty"`
	// Spillable-state columns (absent unless the point ran with
	// SpillState). Peak values are sampled over the drain; PeakRSSMB is
	// heap-in-use plus mmap'd segment bytes — the process-memory bound the
	// spill budget enforces — while SpillResidentMB is the per-sample sum
	// of the stores' resident overlay bytes the budget applies to.
	SpillState       bool    `json:"spill_state,omitempty"`
	SpillMaxMB       int     `json:"spill_max_mb,omitempty"`
	StateKeys        int     `json:"state_keys,omitempty"`
	StateMB          float64 `json:"state_mb,omitempty"`
	PeakHeapMB       float64 `json:"peak_heap_mb,omitempty"`
	PeakMappedMB     float64 `json:"peak_mapped_mb,omitempty"`
	PeakRSSMB        float64 `json:"peak_rss_mb,omitempty"`
	SpillResidentMB  float64 `json:"spill_resident_mb,omitempty"`
	Spills           uint64  `json:"spills,omitempty"`
	SpillCompactions uint64  `json:"spill_compactions,omitempty"`
	SegmentsPeak     int64   `json:"segments_peak,omitempty"`
}

// BenchThroughput generates cfg.Records records all scheduled within the
// first few milliseconds of the run and measures how fast the pipeline
// drains them end to end. Unlike Run, which paces sources on the arrival
// schedule, the drain rate here is bounded only by the data plane — the
// measurement the batching knobs exist to move.
func (cfg BenchConfig) run() (BenchPoint, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Records <= 0 {
		cfg.Records = 100_000
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.NetWorkFactor == 0 {
		cfg.NetWorkFactor = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.CPUs > 0 {
		prev := runtime.GOMAXPROCS(cfg.CPUs)
		defer runtime.GOMAXPROCS(prev)
	}
	// Schedule the whole volume across a nominal 50ms window: effectively
	// all records are due immediately, so sources run flat out.
	genWindow := 50 * time.Millisecond
	rc := RunConfig{
		Query:    cfg.Query,
		Protocol: cfg.Protocol,
		Workers:  cfg.Workers,
		Rate:     float64(cfg.Records) / genWindow.Seconds(),
		Duration: genWindow,
		Seed:     cfg.Seed,
	}
	rc.applyDefaults()
	broker, job, _, err := buildWorkload(&rc)
	if err != nil {
		return BenchPoint{}, err
	}
	storeCfg := objstore.Config{
		PutLatency:     2 * time.Millisecond,
		GetLatency:     2 * time.Millisecond,
		PerByteLatency: time.Nanosecond,
		Seed:           cfg.Seed,
	}
	var durability core.DurabilityConfig
	if cfg.Durable {
		dir, terr := os.MkdirTemp("", "checkmate-bench-*")
		if terr != nil {
			return BenchPoint{}, fmt.Errorf("harness: durable bench dir: %w", terr)
		}
		defer os.RemoveAll(dir)
		policy := wal.SyncGroup
		if cfg.WALSync != "" {
			p, perr := wal.PolicyByName(cfg.WALSync)
			if perr != nil {
				return BenchPoint{}, fmt.Errorf("harness: %w", perr)
			}
			policy = p
		}
		storeCfg.Dir = filepath.Join(dir, "blobs")
		durability = core.DurabilityConfig{
			Enabled: true,
			WALDir:  filepath.Join(dir, "wal"),
			Sync:    policy,
		}
	}
	store, err := objstore.Open(storeCfg)
	if err != nil {
		return BenchPoint{}, fmt.Errorf("harness: open store: %w", err)
	}
	var stateSpill core.StateSpillConfig
	if cfg.SpillState {
		dir, terr := os.MkdirTemp("", "checkmate-spill-*")
		if terr != nil {
			return BenchPoint{}, fmt.Errorf("harness: spill bench dir: %w", terr)
		}
		defer os.RemoveAll(dir)
		stateSpill = core.StateSpillConfig{
			Enabled:           true,
			Dir:               dir,
			MaxResidentBytes:  cfg.SpillMaxMB << 20,
			MaxOverlayEntries: cfg.SpillMaxEntries,
		}
	}
	recorder := metrics.NewRecorder(time.Now(), cfg.Timeout, time.Second)
	var tracer *trace.Tracer
	if cfg.Trace {
		tracer = trace.New(0)
	}
	eng, err := core.NewEngine(core.Config{
		Trace:              tracer,
		Workers:            cfg.Workers,
		Protocol:           cfg.Protocol,
		CheckpointInterval: cfg.CheckpointInterval,
		Broker:             broker,
		Store:              store,
		Recorder:           recorder,
		PollInterval:       2 * time.Millisecond,
		NetWorkFactor:      cfg.NetWorkFactor,
		Batching:           core.BatchingConfig{MaxRecords: cfg.BatchMaxRecords},
		SyncSnapshots:      cfg.SyncSnapshots,
		DeltaCheckpoints:   cfg.DeltaCheckpoints,
		StateSpill:         stateSpill,
		Durability:         durability,
		Seed:               cfg.Seed,
	}, job)
	if err != nil {
		return BenchPoint{}, err
	}
	defer eng.Close()
	if cfg.NoFramePool {
		prev := core.SetFramePooling(false)
		defer core.SetFramePooling(prev)
	}
	// Settle the heap before measuring so the alloc/GC deltas cover the
	// drain alone, not workload generation.
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := eng.Start(); err != nil {
		return BenchPoint{}, err
	}
	// Drain: done when the sources consumed everything and the sink count
	// has been stable for a moment.
	deadline := start.Add(cfg.Timeout)
	var lastCount uint64
	stableSince := time.Now()
	var elapsed time.Duration
	// Peak-memory sampling for the spill table: heap-in-use plus mapped
	// segment bytes approximates the process RSS attributable to keyed
	// state. Sampling is gated on SpillState (ReadMemStats stops the
	// world) and throttled to ~20 Hz.
	var peakHeap, peakMapped, peakRSS, peakResident uint64
	var peakSegments int64
	lastSample := time.Now()
	sampleMem := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		st := eng.StateStats()
		if ms.HeapInuse > peakHeap {
			peakHeap = ms.HeapInuse
		}
		if uint64(st.MappedBytes) > peakMapped {
			peakMapped = uint64(st.MappedBytes)
		}
		if rss := ms.HeapInuse + uint64(st.MappedBytes); rss > peakRSS {
			peakRSS = rss
		}
		if uint64(st.ResidentBytes) > peakResident {
			peakResident = uint64(st.ResidentBytes)
		}
		if st.Segments > peakSegments {
			peakSegments = st.Segments
		}
	}
	for {
		if time.Now().After(deadline) {
			eng.Stop()
			return BenchPoint{}, fmt.Errorf("harness: bench %s/%s did not drain within %v (sink count %d)",
				cfg.Query, cfg.Protocol.Name(), cfg.Timeout, recorder.SinkCount())
		}
		count := recorder.SinkCount()
		if count != lastCount {
			lastCount = count
			stableSince = time.Now()
			elapsed = time.Since(start)
		}
		if (cfg.SpillState || cfg.MemSample) && time.Since(lastSample) > 50*time.Millisecond {
			lastSample = time.Now()
			sampleMem()
		}
		// Check the (expensive, whole-backlog-scanning) SourceBacklog only
		// once the sink count has already settled, so the measurement loop
		// does not steal CPU from the data plane under measurement.
		if count > 0 && time.Since(stableSince) > 100*time.Millisecond && eng.SourceBacklog() == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if cfg.SpillState || cfg.MemSample {
		sampleMem() // final sample at full state size
	}
	// Snapshot memory stats before Stop: the drain is over, and Stop-side
	// finalization (summaries, upload teardown) is not data-plane work.
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	eng.Stop()
	// Keys and logical bytes are counted on the stopped engine — Len and
	// Bytes read the stores' plain counters, safe only once processing is
	// quiesced.
	stateKeys := eng.StateKeys()
	stateBytes := eng.StateBytes()
	sum := recorder.Summarize(cfg.Protocol.Kind() == core.KindCoordinated)
	secs := elapsed.Seconds()
	pt := BenchPoint{
		Query:           cfg.Query,
		Protocol:        cfg.Protocol.Name(),
		BatchMaxRecords: maxInt(cfg.BatchMaxRecords, 1),
		Workers:         cfg.Workers,
		CPUs:            runtime.GOMAXPROCS(0),
		Records:         sum.SinkCount,
		Seconds:         secs,
		P50Millis:       float64(sum.Timeline.P50) / 1e6,
		P99Millis:       float64(sum.Timeline.P99) / 1e6,
		PayloadBytes:    sum.PayloadBytes,
		ProtocolBytes:   sum.ProtocolBytes,
		OverheadRatio:   sum.OverheadRatio,
		DataMessages:    sum.DataMessages,
		BatchesSent:     sum.BatchesSent,
		AvgBatchRecords: sum.AvgBatchRecords,
		Checkpoints:     uint64(sum.TotalCheckpoints),
		GCCycles:        m1.NumGC - m0.NumGC,
		GCPauseTotalMs:  float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6,

		SyncSnapshots:     cfg.SyncSnapshots,
		DeltaCheckpoints:  cfg.DeltaCheckpoints,
		SyncPauses:        uint64(sum.SyncPauses),
		MaxSyncPauseMs:    ms(sum.MaxSyncPause),
		MeanSyncPauseMs:   ms(sum.MeanSyncPause),
		P99SyncPauseMs:    ms(sum.P99SyncPause),
		MeanMaterializeMs: ms(sum.MeanMaterialize),
		MeanUploadMs:      ms(sum.MeanUpload),
		CkptP99DeltaMs:    ms(sum.CkptBucketP99 - sum.QuietBucketP99),

		Traced:      cfg.Trace,
		TraceEvents: tracer.EventCount(),
	}
	if cfg.SpillState || cfg.MemSample {
		pt.PeakHeapMB = float64(peakHeap) / (1 << 20)
		pt.PeakMappedMB = float64(peakMapped) / (1 << 20)
		pt.PeakRSSMB = float64(peakRSS) / (1 << 20)
		pt.StateKeys = stateKeys
		pt.StateMB = float64(stateBytes) / (1 << 20)
	}
	if cfg.SpillState {
		st := eng.StateStats()
		pt.SpillState = true
		pt.SpillMaxMB = cfg.SpillMaxMB
		pt.SpillResidentMB = float64(peakResident) / (1 << 20)
		pt.Spills = st.Spills
		pt.SpillCompactions = st.Compactions
		pt.SegmentsPeak = peakSegments
	}
	if cfg.Durable {
		ws := eng.WALStats()
		pt.Durable = true
		pt.WALSync = string(durability.Sync)
		pt.WALAppends = ws.Appends
		pt.WALFsyncs = ws.Fsyncs
		pt.WALBytes = ws.BytesWritten
		pt.StoreFsyncs = store.Stats().Fsyncs
	}
	if sum.SinkCount > 0 {
		pt.AllocsPerRecord = float64(m1.Mallocs-m0.Mallocs) / float64(sum.SinkCount)
		pt.BytesPerRecord = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(sum.SinkCount)
	}
	if secs > 0 {
		pt.RecordsPerSec = float64(sum.SinkCount) / secs
	}
	return pt, nil
}

// BenchThroughput runs one drain-style throughput measurement (the median
// of cfg.Repeat runs).
func BenchThroughput(cfg BenchConfig) (BenchPoint, error) {
	if cfg.Repeat <= 1 {
		return cfg.run()
	}
	pts := make([]BenchPoint, 0, cfg.Repeat)
	for i := 0; i < cfg.Repeat; i++ {
		pt, err := cfg.run()
		if err != nil {
			return BenchPoint{}, err
		}
		pts = append(pts, pt)
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].RecordsPerSec < pts[b].RecordsPerSec })
	return pts[len(pts)/2], nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
