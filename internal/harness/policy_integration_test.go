package harness

import (
	"testing"
	"time"

	"checkmate/internal/protocol"
)

// TestTriggerPoliciesEndToEnd runs the uncoordinated protocol with each
// trigger policy through a failure and checks that recovery completes under
// every policy.
func TestTriggerPoliciesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	policies := []protocol.TriggerPolicy{
		nil, // default jittered interval
		protocol.Interval{},
		protocol.EventCount{Events: 400},
		protocol.Idle{IdleFor: 20 * time.Millisecond},
	}
	for _, pol := range policies {
		p := protocol.UncoordinatedWithPolicy{Policy: pol}
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(RunConfig{
				Query: "q12", Protocol: p, Workers: 2, Rate: 4000,
				Duration: 1500 * time.Millisecond, FailureAt: 600 * time.Millisecond,
				Window: 200 * time.Millisecond, Seed: 21,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Summary.SinkCount == 0 {
				t.Fatal("no output")
			}
			if res.Summary.Failures != 1 || res.Summary.RestartTime == 0 {
				t.Fatalf("failure not recovered: %+v", res.Summary.Failures)
			}
			if res.Summary.TotalCheckpoints == 0 {
				t.Fatal("no checkpoints under policy")
			}
			t.Logf("%s: checkpoints=%d invalid=%d replayed=%d",
				p.Name(), res.Summary.TotalCheckpoints,
				res.Summary.InvalidCheckpoints, res.Summary.ReplayedOnRecovery)
		})
	}
}

// TestEventCountPolicyBoundsReplay checks the ablation claim: a small
// event-count budget takes more checkpoints but replays fewer messages on
// recovery than a long fixed interval.
func TestEventCountPolicyBoundsReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(p protocol.UncoordinatedWithPolicy, interval time.Duration) (ckpts int, replayed uint64) {
		res, err := Run(RunConfig{
			Query: "q1", Protocol: p, Workers: 2, Rate: 8000,
			Duration: 1500 * time.Millisecond, FailureAt: 700 * time.Millisecond,
			CheckpointInterval: interval, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.TotalCheckpoints, res.Summary.ReplayedOnRecovery
	}
	// Long interval: few checkpoints, long replay.
	coarseCkpts, coarseReplay := run(protocol.UncoordinatedWithPolicy{Policy: protocol.Interval{}}, 600*time.Millisecond)
	// Tight event budget: many checkpoints, short replay.
	fineCkpts, fineReplay := run(protocol.UncoordinatedWithPolicy{Policy: protocol.EventCount{Events: 250}}, 600*time.Millisecond)
	t.Logf("coarse: ckpts=%d replay=%d; fine: ckpts=%d replay=%d",
		coarseCkpts, coarseReplay, fineCkpts, fineReplay)
	if fineCkpts <= coarseCkpts {
		t.Fatalf("event-count policy did not take more checkpoints (%d vs %d)", fineCkpts, coarseCkpts)
	}
	if fineReplay >= coarseReplay && coarseReplay > 0 {
		t.Fatalf("event-count policy did not bound replay (%d vs %d)", fineReplay, coarseReplay)
	}
}
