package harness

import (
	"fmt"
	"runtime"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/metrics"
	"checkmate/internal/protocol"
)

// ExtensionUnalignedTable compares aligned vs unaligned coordinated
// checkpoints under skew — the fix the paper's discussion of straggler
// stalls and backpressure points at (Flink's unaligned checkpoints).
// Unaligned markers overtake queued data, so the checkpointing time should
// stay flat as the hot-item ratio grows, while the aligned round time blows
// up with the straggler.
func (s *Suite) ExtensionUnalignedTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Extension: aligned vs unaligned coordinated under skew (%d workers, q12, 50%% MST)", s.SkewWorkers),
		"HotRatio", "COOR p50(ms)", "UCOOR p50(ms)", "COOR CT(ms)", "UCOOR CT(ms)")
	for _, hot := range s.SkewRatios {
		row := []any{fmt.Sprintf("%.0f%%", hot*100)}
		var cts []string
		for _, p := range []core.Protocol{protocol.Coordinated{}, protocol.UnalignedCoordinated{}} {
			res, err := s.cell("q12", p, s.SkewWorkers, 0.5, hot, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", ms(res.Summary.Timeline.P50)))
			cts = append(cts, fmt.Sprintf("%.2f", ms(res.Summary.AvgCheckpointTime)))
		}
		for _, ct := range cts {
			row = append(row, ct)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtensionCICVariantsTable compares the two communication-induced
// protocols the paper considered: HMNR (adopted) and BCS (rejected after
// "initial tests"). BCS piggybacks a single index (tiny messages) but
// forces a checkpoint whenever the sender is ahead, producing far more
// checkpoints; HMNR piggybacks large vectors but forces rarely.
func (s *Suite) ExtensionCICVariantsTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		"Extension: CIC variants — HMNR (paper's choice) vs BCS (q3, 80% of HMNR MST)",
		"Workers", "Protocol", "Overhead", "Ckpts", "Forced", "p50(ms)")
	for _, w := range s.TableWorkers {
		// Both run at the same absolute rate (HMNR's 80% MST) so the
		// forced-checkpoint behaviour is compared under identical load.
		m, err := s.mst("q3", protocol.CIC{}, w)
		if err != nil {
			return nil, err
		}
		for _, p := range []core.Protocol{protocol.CIC{}, protocol.BCS{}} {
			cfg := s.base("q3", p, w)
			cfg.Rate = m * 0.8
			s.logf("run q3 %-5s %2dw rate=%.0f (CIC variants)", p.Name(), w, cfg.Rate)
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(w, p.Name(),
				fmt.Sprintf("%.2fx", res.Summary.OverheadRatio),
				res.Summary.TotalCheckpoints,
				res.Summary.ForcedCkpts,
				fmt.Sprintf("%.1f", ms(res.Summary.Timeline.P50)))
		}
	}
	return t, nil
}

// ExtensionUnalignedCyclicTable runs the unaligned coordinated protocol on
// the cyclic reachability query — impossible for the aligned variant —
// extending Table IV with a third protocol.
func (s *Suite) ExtensionUnalignedCyclicTable() (*metrics.Table, error) {
	t := metrics.NewTable("Extension: unaligned coordinated on the cyclic query",
		"Workers", "Protocol", "CT(ms)", "RT(ms)", "Sink records")
	for _, w := range s.CyclicWorkers {
		p := protocol.UnalignedCoordinated{}
		m, err := s.cyclicMST(p, w)
		if err != nil {
			return nil, err
		}
		cfg := s.base(QueryCyclic, p, w)
		cfg.Rate = m * 0.775
		cfg.FailureAt = s.dur(48)
		cfg.Nodes = 1_000_000
		s.logf("run cyclic UCOOR %2dw rate=%.0f", w, cfg.Rate)
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(w, p.Name(),
			fmt.Sprintf("%.2f", ms(res.Summary.AvgCheckpointTime)),
			fmt.Sprintf("%.1f", ms(res.Summary.RestartTime)),
			res.Summary.SinkCount)
	}
	return t, nil
}

// ExtensionSemanticsTable compares the three processing guarantees of the
// paper's §II-A (Definitions 1-3) under the uncoordinated protocol with a
// mid-run failure.
func (s *Suite) ExtensionSemanticsTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Extension: processing guarantees under failure (UNC, q1, %d workers)", s.SkewWorkers),
		"Semantics", "sink", "replayed", "dup-dropped", "restart(ms)")
	for _, sem := range []core.Semantics{core.ExactlyOnce, core.AtLeastOnce, core.AtMostOnce} {
		cfg := s.base("q1", protocol.Uncoordinated{}, s.SkewWorkers)
		cfg.Rate = 15000
		cfg.Duration = s.dur(30)
		cfg.FailureAt = s.dur(12)
		cfg.Semantics = sem
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(sem.String(), res.Summary.SinkCount, res.Summary.ReplayMessages,
			res.Summary.DupDropped, fmt.Sprintf("%.1f", ms(res.Summary.RestartTime)))
	}
	return t, nil
}

// AblationTriggerPolicyTable sweeps the uncoordinated checkpoint trigger
// policies: tighter triggers take more checkpoints but bound the replay
// volume on recovery (§III-B's configurability).
func (s *Suite) AblationTriggerPolicyTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Ablation: UNC trigger policies (q12, %d workers, failure mid-run)", s.SkewWorkers),
		"Policy", "ckpts", "invalid", "replayed", "restart(ms)")
	policies := []core.Protocol{
		protocol.Uncoordinated{},
		protocol.UncoordinatedWithPolicy{Policy: protocol.Interval{}},
		protocol.UncoordinatedWithPolicy{Policy: protocol.EventCount{Events: 500}},
		protocol.UncoordinatedWithPolicy{Policy: protocol.Idle{IdleFor: s.dur(0.5)}},
	}
	for _, p := range policies {
		cfg := s.base("q12", p, s.SkewWorkers)
		cfg.Rate = 15000
		cfg.Duration = s.dur(30)
		cfg.FailureAt = s.dur(12)
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name(), res.Summary.TotalCheckpoints, res.Summary.InvalidCheckpoints,
			res.Summary.ReplayedOnRecovery, fmt.Sprintf("%.1f", ms(res.Summary.RestartTime)))
	}
	return t, nil
}

// ExtensionStragglerTable reduces the paper's skew finding (Fig. 12) to its
// mechanism: a synthetic per-event delay on one worker — no data skew —
// inflates the coordinated round time while UNC keeps checkpointing locally.
func (s *Suite) ExtensionStragglerTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Extension: synthetic straggler (q12, %d workers)", s.SkewWorkers),
		"Protocol", "Delay/event", "p50(ms)", "CT(ms)")
	for _, p := range []core.Protocol{protocol.Coordinated{}, protocol.Uncoordinated{}} {
		for _, delay := range []time.Duration{0, 200 * time.Microsecond} {
			cfg := s.base("q12", p, s.SkewWorkers)
			cfg.Rate = 8000
			cfg.Duration = s.dur(30)
			cfg.StragglerDelay = delay
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.Name(), delay.String(),
				fmt.Sprintf("%.1f", ms(res.Summary.Timeline.P50)),
				fmt.Sprintf("%.2f", ms(res.Summary.AvgCheckpointTime)))
		}
	}
	return t, nil
}

// AblationGCTable measures what checkpoint garbage collection reclaims —
// the storage waste of superseded checkpoints the paper's invalid-checkpoint
// discussion motivates.
func (s *Suite) AblationGCTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Ablation: checkpoint GC (q3, %d workers, UNC)", s.SkewWorkers),
		"GC", "ckpts", "reclaimed", "reclaimedKB")
	for _, gc := range []bool{false, true} {
		cfg := s.base("q3", protocol.Uncoordinated{}, s.SkewWorkers)
		cfg.Rate = 15000
		cfg.Duration = s.dur(30)
		cfg.CheckpointInterval = s.dur(4)
		cfg.CheckpointGC = gc
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(gc, res.Summary.TotalCheckpoints, res.Summary.GCCheckpoints,
			res.Summary.GCBytes/1024)
	}
	return t, nil
}

// ExtensionNewQueriesTable exercises the workload-library extension queries
// (Q2 selection, Q4 category averages, Q5 sliding-window hot items, Q7
// global window maximum, Q11 session windows) under every protocol family.
func (s *Suite) ExtensionNewQueriesTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Extension: Q2/Q4/Q5/Q7/Q11 under all protocols (%d workers)", s.SkewWorkers),
		"Query", "Protocol", "sink", "p50(ms)", "CT(ms)", "ckpts")
	for _, q := range []string{"q2", "q4", "q5", "q7", "q11"} {
		for _, p := range protocol.All() {
			cfg := s.base(q, p, s.SkewWorkers)
			cfg.Rate = 15000
			cfg.Duration = s.dur(30)
			cfg.Slide = s.dur(5)
			cfg.SessionGap = s.dur(2)
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(q, p.Name(), res.Summary.SinkCount,
				fmt.Sprintf("%.1f", ms(res.Summary.Timeline.P50)),
				fmt.Sprintf("%.2f", ms(res.Summary.AvgCheckpointTime)),
				res.Summary.TotalCheckpoints)
		}
	}
	return t, nil
}

// ExtensionOutputTable contrasts exactly-once processing with exactly-once
// output (the paper's §II-A distinction): under immediate output an
// external consumer observes duplicated results after a failure; under
// transactional (epoch-committed) output it never does, at the price of
// higher output-visibility latency — a full checkpoint round for COOR, a
// stable recovery line for the logging protocols.
func (s *Suite) ExtensionOutputTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Extension: exactly-once output via transactional sinks (q1, %d workers, failure mid-run)", s.SkewWorkers),
		"Protocol", "Mode", "visible", "dup UIDs", "discarded", "vis p50(ms)", "vis p99(ms)")
	for _, p := range s.checkpointed() {
		for _, mode := range []core.OutputMode{core.OutputImmediate, core.OutputTransactional} {
			cfg := s.base("q1", p, s.SkewWorkers)
			cfg.Rate = 15000
			cfg.Duration = s.dur(30)
			cfg.FailureAt = s.dur(12)
			cfg.Output = mode
			s.logf("run q1 %-5s %-13s (output visibility)", p.Name(), mode)
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.Name(), mode.String(), res.Output.Visible, res.DuplicateUIDs,
				res.Output.Discarded,
				fmt.Sprintf("%.1f", ms(res.VisibilityP50)),
				fmt.Sprintf("%.1f", ms(res.VisibilityP99)))
		}
	}
	return t, nil
}

// ExtensionEventTimeTable verifies the paper's §VI claim that "the type of
// the time window does not affect the checkpointing protocol's
// performance": Q12 with processing-time windows and its event-time twin
// q12et (watermark-fired tumbling windows over Bid.DateTime) should show
// comparable checkpointing time and checkpoint counts under every
// protocol; the only expected difference is the watermark control traffic.
func (s *Suite) ExtensionEventTimeTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Extension: processing-time vs event-time windows (%d workers)", s.SkewWorkers),
		"Query", "Protocol", "sink", "CT(ms)", "ckpts", "p50(ms)", "watermarks")
	for _, q := range []string{"q12", "q12et"} {
		for _, p := range s.checkpointed() {
			cfg := s.base(q, p, s.SkewWorkers)
			cfg.Rate = 15000
			cfg.Duration = s.dur(30)
			s.logf("run %-6s %-5s (event-time windows)", q, p.Name())
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(q, p.Name(), res.Summary.SinkCount,
				fmt.Sprintf("%.2f", ms(res.Summary.AvgCheckpointTime)),
				res.Summary.TotalCheckpoints,
				fmt.Sprintf("%.1f", ms(res.Summary.Timeline.P50)),
				res.Summary.WatermarkMessages)
		}
	}
	return t, nil
}

// AblationCompressionTable measures checkpoint compression on the stateful
// join query. The contrast between protocols is the finding: COOR blobs
// (pure operator state) deflate well, while UNC blobs also carry the
// exactly-once dedup ring — effectively random 64-bit UIDs — which is
// incompressible and caps the achievable ratio. Compression is a
// state-backend knob, not a protocol knob.
func (s *Suite) AblationCompressionTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Ablation: checkpoint compression (q3, %d workers)", s.SkewWorkers),
		"Protocol", "Compress", "bytes/ckpt", "CT(ms)", "p50(ms)")
	for _, p := range []core.Protocol{protocol.Coordinated{}, protocol.Uncoordinated{}} {
		for _, compress := range []bool{false, true} {
			cfg := s.base("q3", p, s.SkewWorkers)
			cfg.Rate = 8000
			cfg.Duration = s.dur(30)
			cfg.CompressCheckpoints = compress
			s.logf("run q3 %-5s compress=%v", p.Name(), compress)
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			perCkpt := float64(0)
			if res.Store.Puts > 0 {
				perCkpt = float64(res.Store.PutBytes) / float64(res.Store.Puts)
			}
			t.AddRow(p.Name(), fmt.Sprintf("%v", compress),
				fmt.Sprintf("%.0f", perCkpt),
				fmt.Sprintf("%.2f", ms(res.Summary.AvgCheckpointTime)),
				fmt.Sprintf("%.1f", ms(res.Summary.Timeline.P50)))
		}
	}
	return t, nil
}

// ExtensionRollbackScopeTable quantifies the partial-recovery potential of
// the uncoordinated protocol that the paper's conclusions point to: for
// every possible single-instance failure, the rollback-dependency graph
// tells how many instances would actually need to restore state. Queries
// without shuffling (q1) keep the scope near one chain; shuffled queries
// couple everything and the scope approaches a global rollback — exactly
// the topology sensitivity that makes partial recovery a research target.
func (s *Suite) ExtensionRollbackScopeTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Extension: single-failure rollback scope under UNC (%d workers)", s.SkewWorkers),
		"Query", "instances", "avg scope", "max scope", "avg depth")
	for _, q := range []string{"q1", "q12", "q3"} {
		cfg := s.base(q, protocol.Uncoordinated{}, s.SkewWorkers)
		cfg.Rate = 8000
		cfg.Duration = s.dur(30)
		cfg.AnalyzeRollbackScope = true
		s.logf("run %-4s UNC (rollback scope)", q)
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(q, res.Scope.Instances,
			fmt.Sprintf("%.1f", res.Scope.AvgScope),
			res.Scope.MaxScope,
			fmt.Sprintf("%.2f", res.Scope.AvgDepth))
	}
	return t, nil
}

// PauseTable profiles the checkpoint pause of asynchronous copy-on-write
// snapshots: a q3 drain (growing join state, the paper's state-heavy
// query) per protocol — aligned, unaligned and both logging families —
// with async-on/off A/B rows at full-snapshot and base-plus-delta
// persistence. The sync rows serialize the keyed store on the processing
// goroutine (the pre-async behaviour); the async rows only freeze a
// copy-on-write capture there, so their max/mean sync pause collapses to
// the gather cost (O(dirty-set) in the delta configuration) while
// materialize+upload move to the worker's uploader. "ckpt Δp99" is the p99
// sink-latency penalty of checkpoint-containing seconds over quiet ones.
func (s *Suite) PauseTable() (*metrics.Table, error) {
	t := metrics.NewTable("Checkpoint pause profile (q3 drain, 2 workers, 150k records, 100ms interval)",
		"Protocol", "Delta", "Async", "krec/s", "ckpts", "max pause", "mean pause", "p99 pause", "materialize", "upload", "ckpt Δp99 (ms)")
	for _, name := range []string{"COOR", "UCOOR", "UNC", "CIC"} {
		p, err := protocol.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, delta := range []bool{false, true} {
			for _, sync := range []bool{false, true} {
				pt, err := BenchThroughput(BenchConfig{
					Query:              "q3",
					Protocol:           p,
					Workers:            2,
					Records:            150_000,
					BatchMaxRecords:    64,
					CheckpointInterval: 100 * time.Millisecond,
					SyncSnapshots:      sync,
					DeltaCheckpoints:   delta,
					Seed:               s.Seed,
				})
				if err != nil {
					return nil, err
				}
				async := "on"
				if sync {
					async = "off"
				}
				t.AddRow(pt.Protocol, delta, async,
					fmt.Sprintf("%.0f", pt.RecordsPerSec/1e3),
					pt.SyncPauses,
					fmt.Sprintf("%.2f", pt.MaxSyncPauseMs),
					fmt.Sprintf("%.3f", pt.MeanSyncPauseMs),
					fmt.Sprintf("%.2f", pt.P99SyncPauseMs),
					fmt.Sprintf("%.2f", pt.MeanMaterializeMs),
					fmt.Sprintf("%.2f", pt.MeanUploadMs),
					fmt.Sprintf("%.1f", pt.CkptP99DeltaMs))
			}
		}
		s.logf("pause profile %-5s done", name)
	}
	return t, nil
}

// AllocThroughputTable profiles the data plane's allocation behaviour: a
// q1 drain per protocol and batch size reporting records/second next to
// allocs/record, bytes/record and GC pause totals, plus a pool-disabled
// baseline row ("pool off") per protocol at batch 8 so the pooled-versus-
// unpooled delta is visible on identical code. This is the benchall view of
// the zero-allocation data plane; BENCH_throughput.json carries the same
// columns machine-readably.
func (s *Suite) AllocThroughputTable() (*metrics.Table, error) {
	t := metrics.NewTable("Data-plane allocation profile (q1 drain, 2 workers, 100k records)",
		"Protocol", "Batch", "Pool", "krec/s", "allocs/rec", "B/rec", "GCs", "GC pause (ms)")
	addRow := func(pt BenchPoint, pool string) {
		t.AddRow(pt.Protocol, pt.BatchMaxRecords, pool,
			fmt.Sprintf("%.0f", pt.RecordsPerSec/1e3),
			fmt.Sprintf("%.2f", pt.AllocsPerRecord),
			fmt.Sprintf("%.0f", pt.BytesPerRecord),
			pt.GCCycles,
			fmt.Sprintf("%.2f", pt.GCPauseTotalMs))
	}
	for _, name := range []string{"COOR", "UNC", "CIC"} {
		p, err := protocol.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, batch := range []int{1, 8, 64} {
			cfg := BenchConfig{
				Query:           "q1",
				Protocol:        p,
				Workers:         2,
				Records:         100_000,
				BatchMaxRecords: batch,
				Seed:            s.Seed,
			}
			pt, err := BenchThroughput(cfg)
			if err != nil {
				return nil, err
			}
			addRow(pt, "on")
			if batch == 8 {
				cfg.NoFramePool = true
				off, err := BenchThroughput(cfg)
				if err != nil {
					return nil, err
				}
				addRow(off, "off")
			}
		}
		s.logf("alloc profile %-4s done", name)
	}
	return t, nil
}

// ScaleTable sweeps the cores axis: a q1 drain per protocol at GOMAXPROCS
// 1/2/4/8 (batch 64, so the exchange runs its vectorized fast path),
// reporting records/second and allocs/record next to the speedup over the
// same protocol's 1-cpu row. This is the benchall view of the multi-core
// scale-out work — lock-free SPSC exchange, sharded coordinator, striped
// msglog; BENCH_throughput.json carries the same grid machine-readably.
// The physical-core count is printed in the title: GOMAXPROCS beyond it
// measures oversubscription behaviour (scheduler churn, lock convoying)
// rather than hardware parallelism.
func (s *Suite) ScaleTable() (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Cores-axis scaling (q1 drain, 2 workers, 100k records, batch 64; %d physical cpus)", runtime.NumCPU()),
		"Protocol", "CPUs", "krec/s", "vs 1 cpu", "allocs/rec", "GCs", "GC pause (ms)")
	for _, name := range []string{"COOR", "UNC", "CIC"} {
		p, err := protocol.ByName(name)
		if err != nil {
			return nil, err
		}
		var base1 float64
		for _, cpus := range []int{1, 2, 4, 8} {
			pt, err := BenchThroughput(BenchConfig{
				Query:           "q1",
				Protocol:        p,
				Workers:         2,
				Records:         100_000,
				BatchMaxRecords: 64,
				CPUs:            cpus,
				Seed:            s.Seed,
			})
			if err != nil {
				return nil, err
			}
			if cpus == 1 {
				base1 = pt.RecordsPerSec
			}
			speedup := 0.0
			if base1 > 0 {
				speedup = pt.RecordsPerSec / base1
			}
			t.AddRow(pt.Protocol, pt.CPUs,
				fmt.Sprintf("%.0f", pt.RecordsPerSec/1e3),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.2f", pt.AllocsPerRecord),
				pt.GCCycles,
				fmt.Sprintf("%.2f", pt.GCPauseTotalMs))
		}
		s.logf("scale sweep %-4s done", name)
	}
	return t, nil
}

// DurableTable measures what real durability costs: a q1 drain per
// protocol with durability off (the in-memory baseline every other table
// runs on), with group commit, and with an fsync per WAL commit. COOR
// never message-logs, so its durable rows pay only the disk object
// store's fsyncs; the logging families (UNC, CIC) additionally fsync the
// message-log WAL, and the appends/fsync column is the amortization the
// group-commit protocol buys back — many concurrent appends riding one
// fsync instead of one each. BENCH_throughput.json carries the same grid
// machine-readably.
func (s *Suite) DurableTable() (*metrics.Table, error) {
	t := metrics.NewTable("Durability cost (q1 drain, 2 workers, 100k records, batch 8)",
		"Protocol", "Durability", "krec/s", "vs off", "WAL appends", "WAL fsyncs", "appends/fsync", "WAL MB", "store fsyncs")
	for _, name := range []string{"COOR", "UNC", "CIC"} {
		p, err := protocol.ByName(name)
		if err != nil {
			return nil, err
		}
		var baseOff float64
		for _, mode := range []string{"off", "group", "always"} {
			cfg := BenchConfig{
				Query:           "q1",
				Protocol:        p,
				Workers:         2,
				Records:         100_000,
				BatchMaxRecords: 8,
				Seed:            s.Seed,
			}
			if mode != "off" {
				cfg.Durable = true
				cfg.WALSync = mode
			}
			pt, err := BenchThroughput(cfg)
			if err != nil {
				return nil, err
			}
			if mode == "off" {
				baseOff = pt.RecordsPerSec
			}
			rel := 0.0
			if baseOff > 0 {
				rel = pt.RecordsPerSec / baseOff
			}
			amort := "-"
			if pt.WALFsyncs > 0 {
				amort = fmt.Sprintf("%.1f", float64(pt.WALAppends)/float64(pt.WALFsyncs))
			}
			t.AddRow(pt.Protocol, mode,
				fmt.Sprintf("%.0f", pt.RecordsPerSec/1e3),
				fmt.Sprintf("%.2fx", rel),
				pt.WALAppends,
				pt.WALFsyncs,
				amort,
				fmt.Sprintf("%.1f", float64(pt.WALBytes)/1e6),
				pt.StoreFsyncs)
		}
		s.logf("durable sweep %-4s done", name)
	}
	return t, nil
}

// TraceOverheadTable measures what the checkpoint-lifecycle span
// collector costs: a q1 drain per protocol with tracing off (the
// baseline every other table runs on) and on, reporting the throughput
// delta, the span volume collected, and the per-record allocation count
// — which must not move, since the enabled record path stores into
// preallocated rings and the disabled path is a nil check. The median of
// three runs damps scheduler noise on shared machines;
// BENCH_throughput.json carries the same A/B machine-readably.
func (s *Suite) TraceOverheadTable() (*metrics.Table, error) {
	t := metrics.NewTable("Tracing overhead (q1 drain, 2 workers, 100k records, batch 8, median of 3)",
		"Protocol", "Trace", "krec/s", "vs off", "spans", "allocs/rec")
	for _, name := range []string{"COOR", "UNC", "CIC"} {
		p, err := protocol.ByName(name)
		if err != nil {
			return nil, err
		}
		var baseOff float64
		for _, traced := range []bool{false, true} {
			pt, err := BenchThroughput(BenchConfig{
				Query:           "q1",
				Protocol:        p,
				Workers:         2,
				Records:         100_000,
				BatchMaxRecords: 8,
				Repeat:          3,
				Trace:           traced,
				Seed:            s.Seed,
			})
			if err != nil {
				return nil, err
			}
			mode := "off"
			if traced {
				mode = "on"
			} else {
				baseOff = pt.RecordsPerSec
			}
			rel := 0.0
			if baseOff > 0 {
				rel = pt.RecordsPerSec / baseOff
			}
			t.AddRow(pt.Protocol, mode,
				fmt.Sprintf("%.0f", pt.RecordsPerSec/1e3),
				fmt.Sprintf("%.2fx", rel),
				pt.TraceEvents,
				fmt.Sprintf("%.2f", pt.AllocsPerRecord))
		}
		s.logf("trace overhead %-4s done", name)
	}
	return t, nil
}

// SpillTable is the larger-than-memory state backend A/B: a state-heavy
// q3/q8 drain with keyed state resident (baseline) versus spilled to
// mmap'd segments under a resident budget far below the working set. The
// RSS column (peak heap-in-use plus mapped segment bytes) is the bound
// the spill budget enforces: the spilling rows hold it near the budget
// while the resident rows grow with total state. Segments/spills/
// compactions show the LSM-style layer dynamics behind the bound.
func (s *Suite) SpillTable() (*metrics.Table, error) {
	t := metrics.NewTable("Spillable keyed state (COOR drain, 2 workers, delta checkpoints, 1 MiB / 4096-entry overlay budget)",
		"Query", "Spill", "keys", "krec/s", "peak heap MB", "mapped MB", "RSS MB", "resident MB", "segs", "spills", "compactions")
	p, err := protocol.ByName("COOR")
	if err != nil {
		return nil, err
	}
	for _, query := range []string{"q3", "q8"} {
		records := 450_000
		if query == "q8" {
			records = 150_000 // q8 drains an order of magnitude slower
		}
		for _, spill := range []bool{false, true} {
			cfg := BenchConfig{
				Query:              query,
				Protocol:           p,
				Workers:            2,
				Records:            records,
				BatchMaxRecords:    64,
				CheckpointInterval: 200 * time.Millisecond,
				DeltaCheckpoints:   true,
				Seed:               s.Seed,
			}
			if spill {
				cfg.SpillState = true
				cfg.SpillMaxMB = 1
				cfg.SpillMaxEntries = 4096
			} else {
				cfg.MemSample = true // resident baseline still reports RSS
			}
			pt, err := BenchThroughput(cfg)
			if err != nil {
				return nil, err
			}
			mode := "off"
			if spill {
				mode = "on"
			}
			heap := fmt.Sprintf("%.1f", pt.PeakHeapMB)
			mapped := fmt.Sprintf("%.1f", pt.PeakMappedMB)
			rss := fmt.Sprintf("%.1f", pt.PeakRSSMB)
			resident := "-"
			if spill {
				resident = fmt.Sprintf("%.2f", pt.SpillResidentMB)
			}
			t.AddRow(pt.Query, mode, pt.StateKeys,
				fmt.Sprintf("%.0f", pt.RecordsPerSec/1e3),
				heap, mapped, rss, resident,
				pt.SegmentsPeak, pt.Spills, pt.SpillCompactions)
		}
		s.logf("spill table %-3s done", query)
	}
	return t, nil
}
