package nexmark

import (
	"testing"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/wire"
)

func TestQ2FilterSelectivity(t *testing.T) {
	ctx := &fakeCtx{}
	for a := uint64(1); a <= 3*q2SelectDivisor; a++ {
		q2Filter{}.OnEvent(ctx, core.Event{Key: a, Value: &Bid{Auction: a, Price: a * 10}})
	}
	if len(ctx.emitted) != 3 {
		t.Fatalf("emitted %d, want 3", len(ctx.emitted))
	}
	r := ctx.emitted[0].v.(*Q2Result)
	if r.Auction != q2SelectDivisor || r.Price != q2SelectDivisor*10 {
		t.Fatalf("first result = %+v", r)
	}
}

func TestQ2EventRoundTrip(t *testing.T) {
	enc := wire.NewEncoder(nil)
	(&Q2Result{Auction: 7, Price: 9}).MarshalWire(enc)
	v, err := decodeQ2Result(wire.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r := v.(*Q2Result)
	if r.Auction != 7 || r.Price != 9 {
		t.Fatalf("round trip = %+v", r)
	}
}

func TestQ5EventRoundTrips(t *testing.T) {
	enc := wire.NewEncoder(nil)
	(&Q5Partial{Auction: 1, Count: 2, Window: -30}).MarshalWire(enc)
	v, err := decodeQ5Partial(wire.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p := v.(*Q5Partial); p.Auction != 1 || p.Count != 2 || p.Window != -30 {
		t.Fatalf("partial round trip = %+v", p)
	}
	enc.Reset()
	(&Q5Result{Auction: 3, Count: 4, Window: 50}).MarshalWire(enc)
	v, err = decodeQ5Result(wire.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r := v.(*Q5Result); r.Auction != 3 || r.Count != 4 || r.Window != 50 {
		t.Fatalf("result round trip = %+v", r)
	}
}

func TestQ5CountFlushesClosedWindows(t *testing.T) {
	c := newQ5Count(10*time.Nanosecond, 5*time.Nanosecond)
	ctx := &fakeCtx{now: 7}
	c.OnEvent(ctx, core.Event{Value: &Bid{Auction: 1}})
	c.OnEvent(ctx, core.Event{Value: &Bid{Auction: 1}})
	c.OnEvent(ctx, core.Event{Value: &Bid{Auction: 2}})
	if len(ctx.emitted) != 0 {
		t.Fatal("counts emitted before window close")
	}
	if ctx.timer != 10 {
		t.Fatalf("timer = %d, want 10 (next slide boundary)", ctx.timer)
	}
	// At t=15 the window [0,10) and [5,15) are both closed.
	ctx.now = 15
	c.OnTimer(ctx, 15)
	// Event at t=7 lands in windows starting at 0 and 5; both closed at 15.
	if len(ctx.emitted) != 4 {
		t.Fatalf("emitted %d partials, want 4 (2 windows x 2 auctions)", len(ctx.emitted))
	}
	p := ctx.emitted[0].v.(*Q5Partial)
	if p.Window != 0 || p.Auction != 1 || p.Count != 2 {
		t.Fatalf("first partial = %+v", p)
	}
	// Partials of one window are keyed by the window start.
	for _, e := range ctx.emitted {
		if e.key != uint64(e.v.(*Q5Partial).Window) {
			t.Fatalf("partial keyed by %d, want window start", e.key)
		}
	}
}

func TestQ5CountSnapshotRestore(t *testing.T) {
	c := newQ5Count(10*time.Nanosecond, 5*time.Nanosecond)
	ctx := &fakeCtx{now: 3}
	c.OnEvent(ctx, core.Event{Value: &Bid{Auction: 9}})
	enc := wire.NewEncoder(nil)
	c.Snapshot(enc)
	r := newQ5Count(time.Nanosecond, time.Nanosecond)
	if err := r.Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r.win.Size != 10*time.Nanosecond || r.win.Slide != 5*time.Nanosecond {
		t.Fatalf("restored window config = %+v", r.win)
	}
	// Flushing after restore must emit the same partials.
	ctx2 := &fakeCtx{now: 20}
	r.OnTimer(ctx2, 20)
	found := false
	for _, e := range ctx2.emitted {
		p := e.v.(*Q5Partial)
		if p.Auction == 9 && p.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("restored counts lost the pending window")
	}
}

func TestQ5MaxRunningLeader(t *testing.T) {
	m := newQ5Max(5 * time.Nanosecond)
	ctx := &fakeCtx{now: 100}
	m.OnEvent(ctx, core.Event{Value: &Q5Partial{Auction: 1, Count: 3, Window: 0}})
	m.OnEvent(ctx, core.Event{Value: &Q5Partial{Auction: 2, Count: 2, Window: 0}}) // not a new leader
	m.OnEvent(ctx, core.Event{Value: &Q5Partial{Auction: 3, Count: 7, Window: 0}})
	m.OnEvent(ctx, core.Event{Value: &Q5Partial{Auction: 4, Count: 7, Window: 0}}) // tie: higher key loses
	if len(ctx.emitted) != 2 {
		t.Fatalf("emitted %d results, want 2 leader changes", len(ctx.emitted))
	}
	last := ctx.emitted[1].v.(*Q5Result)
	if last.Auction != 3 || last.Count != 7 {
		t.Fatalf("final leader = %+v", last)
	}
}

func TestQ5MaxExpiresOldWindows(t *testing.T) {
	m := newQ5Max(5 * time.Nanosecond)
	ctx := &fakeCtx{now: 0}
	m.OnEvent(ctx, core.Event{Value: &Q5Partial{Auction: 1, Count: 1, Window: 0}})
	m.OnEvent(ctx, core.Event{Value: &Q5Partial{Auction: 1, Count: 1, Window: 1000}})
	m.OnTimer(ctx, 500)
	if len(m.best) != 1 {
		t.Fatalf("windows after expiry = %d, want 1", len(m.best))
	}
	if _, ok := m.best[1000]; !ok {
		t.Fatal("fresh window was expired")
	}
}

func TestQ5MaxSnapshotRestore(t *testing.T) {
	m := newQ5Max(5 * time.Nanosecond)
	ctx := &fakeCtx{}
	m.OnEvent(ctx, core.Event{Value: &Q5Partial{Auction: 8, Count: 4, Window: 10}})
	enc := wire.NewEncoder(nil)
	m.Snapshot(enc)
	r := newQ5Max(time.Nanosecond)
	if err := r.Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r.slide != m.slide || len(r.best) != 1 || r.best[10].Key != 8 || r.best[10].Count != 4 {
		t.Fatalf("restored max state = %+v", r.best)
	}
	// A partial that does not beat the restored leader emits nothing.
	ctx2 := &fakeCtx{}
	r.OnEvent(ctx2, core.Event{Value: &Q5Partial{Auction: 9, Count: 3, Window: 10}})
	if len(ctx2.emitted) != 0 {
		t.Fatal("restored leader was forgotten")
	}
}

func TestBidKeyByAuction(t *testing.T) {
	ctx := &fakeCtx{}
	bidKeyByAuction{}.OnEvent(ctx, core.Event{Key: 99, Value: &Bid{Auction: 7, Bidder: 3}})
	if len(ctx.emitted) != 1 || ctx.emitted[0].key != 7 {
		t.Fatalf("rekeyed to %d, want auction 7", ctx.emitted[0].key)
	}
}
