package nexmark

import (
	"testing"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/wire"
)

func TestQ4MaxBidJoin(t *testing.T) {
	q := newQ4MaxBid()
	ctx := &fakeCtx{}

	// Bid before its auction: buffered, nothing emitted.
	q.OnEvent(ctx, core.Event{Value: &Bid{Auction: 1, Bidder: 5, Price: 300}})
	if len(ctx.emitted) != 0 || q.pending[1] != 300 {
		t.Fatalf("early bid: emitted=%d pending=%v", len(ctx.emitted), q.pending)
	}

	// Auction arrives: pending max flushes as the first winning bid.
	q.OnEvent(ctx, core.Event{Value: &Auction{ID: 1, Category: 12}})
	if len(ctx.emitted) != 1 {
		t.Fatalf("emitted = %d", len(ctx.emitted))
	}
	u := ctx.emitted[0].v.(*Q4MaxUpdate)
	if u.Category != 12 || u.New != 300 || !u.First {
		t.Fatalf("update = %+v", u)
	}

	// Lower bid: ignored. Higher bid: incremental update.
	q.OnEvent(ctx, core.Event{Value: &Bid{Auction: 1, Price: 200}})
	if len(ctx.emitted) != 1 {
		t.Fatal("lower bid must not emit")
	}
	q.OnEvent(ctx, core.Event{Value: &Bid{Auction: 1, Price: 500}})
	u = ctx.emitted[1].v.(*Q4MaxUpdate)
	if u.Old != 300 || u.New != 500 || u.First {
		t.Fatalf("update = %+v", u)
	}
}

func TestQ4AvgIncremental(t *testing.T) {
	q := newQ4Avg()
	ctx := &fakeCtx{}
	q.OnEvent(ctx, core.Event{Value: &Q4MaxUpdate{Category: 3, New: 100, First: true}})
	q.OnEvent(ctx, core.Event{Value: &Q4MaxUpdate{Category: 3, New: 300, First: true}})
	if r := ctx.emitted[1].v.(*Q4Result); r.Avg != 200 {
		t.Fatalf("avg = %d, want 200", r.Avg)
	}
	// Winning bid of the first auction rises 100 -> 500: avg becomes 400.
	q.OnEvent(ctx, core.Event{Value: &Q4MaxUpdate{Category: 3, Old: 100, New: 500}})
	if r := ctx.emitted[2].v.(*Q4Result); r.Avg != 400 {
		t.Fatalf("avg = %d, want 400", r.Avg)
	}
}

func TestQ4SnapshotRoundTrip(t *testing.T) {
	q := newQ4MaxBid()
	ctx := &fakeCtx{}
	q.OnEvent(ctx, core.Event{Value: &Auction{ID: 1, Category: 12}})
	q.OnEvent(ctx, core.Event{Value: &Bid{Auction: 1, Price: 500}})
	q.OnEvent(ctx, core.Event{Value: &Bid{Auction: 9, Price: 50}})

	enc := wire.NewEncoder(nil)
	q.Snapshot(enc)
	restored := newQ4MaxBid()
	if err := restored.Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.category[1] != 12 || restored.winning[1] != 500 || restored.pending[9] != 50 {
		t.Fatalf("restored = %+v", restored)
	}

	a := newQ4Avg()
	a.OnEvent(ctx, core.Event{Value: &Q4MaxUpdate{Category: 3, New: 100, First: true}})
	enc.Reset()
	a.Snapshot(enc)
	ra := newQ4Avg()
	if err := ra.Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if ra.sum[3] != 100 || ra.count[3] != 1 {
		t.Fatalf("restored avg = %+v", ra)
	}
}

func TestQ7LocalAndGlobalMax(t *testing.T) {
	local := newQ7Local(100 * time.Nanosecond)
	ctx := &fakeCtx{now: 10}
	local.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 1, Price: 200}})
	local.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 2, Price: 150}}) // not an improvement
	local.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 3, Price: 400}})
	if len(ctx.emitted) != 2 {
		t.Fatalf("local emitted = %d, want 2", len(ctx.emitted))
	}
	p := ctx.emitted[1].v.(*Q7Partial)
	if p.Price != 400 || p.Bidder != 3 || p.Window != 0 {
		t.Fatalf("partial = %+v", p)
	}
	if ctx.emitted[0].key != 0 || ctx.emitted[1].key != 0 {
		t.Fatal("partials must use the constant global key")
	}

	global := newQ7Global(100 * time.Nanosecond)
	gctx := &fakeCtx{now: 10}
	global.OnEvent(gctx, core.Event{Value: &Q7Partial{Window: 0, Price: 400, Bidder: 3}})
	global.OnEvent(gctx, core.Event{Value: &Q7Partial{Window: 0, Price: 300, Bidder: 9}})
	global.OnEvent(gctx, core.Event{Value: &Q7Partial{Window: 0, Price: 900, Bidder: 9}})
	if len(gctx.emitted) != 2 {
		t.Fatalf("global emitted = %d, want 2", len(gctx.emitted))
	}
	r := gctx.emitted[1].v.(*Q7Result)
	if r.Price != 900 || r.Bidder != 9 {
		t.Fatalf("result = %+v", r)
	}
}

func TestQ7WindowEviction(t *testing.T) {
	local := newQ7Local(100 * time.Nanosecond)
	ctx := &fakeCtx{now: 10}
	local.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 1, Price: 200}})
	if len(local.best) != 1 {
		t.Fatal("window not opened")
	}
	local.OnTimer(ctx, 250) // window [0,100) is long closed
	if len(local.best) != 0 {
		t.Fatalf("window not evicted: %v", local.best)
	}
}

func TestQ7SnapshotRoundTrip(t *testing.T) {
	local := newQ7Local(100 * time.Nanosecond)
	ctx := &fakeCtx{now: 10}
	local.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 7, Price: 321}})
	enc := wire.NewEncoder(nil)
	local.Snapshot(enc)
	restored := &q7Local{}
	if err := restored.Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.best[0] != 321 || restored.bidder[0] != 7 {
		t.Fatalf("restored = %+v", restored)
	}
}

func TestBuildQ4Q7(t *testing.T) {
	for _, name := range []string{"q4", "q7"} {
		job, err := Build(name, QueryConfig{Window: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Validate(4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if job.IsCyclic() {
			t.Fatalf("%s must be acyclic", name)
		}
	}
	if got := TopicsFor("q4"); len(got) != 2 {
		t.Fatalf("q4 topics = %v", got)
	}
	if got := TopicsFor("q7"); len(got) != 1 || got[0] != TopicBids {
		t.Fatalf("q7 topics = %v", got)
	}
}
