package nexmark

import (
	"time"

	"checkmate/internal/core"
	"checkmate/internal/window"
	"checkmate/internal/wire"
)

// typeQ11Result continues the 10..49 wire-id block (20..22 are taken by the
// cyclic query records).
const typeQ11Result = 25

// Q11Result is the output of query 11: one closed bidding session of one
// bidder (how many bids the user made in each session of activity).
type Q11Result struct {
	Bidder uint64
	Count  uint64
	Start  int64
	End    int64
}

// TypeID implements wire.Value.
func (r *Q11Result) TypeID() uint16 { return typeQ11Result }

// MarshalWire implements wire.Value.
func (r *Q11Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Bidder)
	e.Uvarint(r.Count)
	e.Varint(r.Start)
	e.Varint(r.End)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q11Result) DecodeWireInto(d *wire.Decoder) error {
	r.Bidder = d.Uvarint()
	r.Count = d.Uvarint()
	r.Start = d.Varint()
	r.End = d.Varint()
	return d.Err()
}

func decodeQ11Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q11Result{}
	return r, r.DecodeWireInto(d)
}

func init() {
	wire.RegisterType(typeQ11Result, decodeQ11Result)
}

// q11Session counts bids per bidder per session: a session closes after Gap
// of inactivity (processing time), at which point one result record is
// emitted. Session state is tracked by window.Session and snapshotted with
// the operator.
type q11Session struct {
	gap      time.Duration
	sessions *window.Session
	// nextSweep is the armed sweep deadline (0 = unarmed). An instance has
	// a single pending timer, so OnEvent must not push an armed sweep
	// forward — continuous arrivals would starve it forever.
	nextSweep int64
}

func newQ11Session(gap time.Duration) *q11Session {
	return &q11Session{gap: gap, sessions: window.NewSession(gap)}
}

// OnEvent implements core.Operator.
func (q *q11Session) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	now := ctx.NowNS()
	q.sessions.Add(b.Bidder, now)
	if q.nextSweep <= 0 {
		q.nextSweep = now + int64(q.gap)
		ctx.SetTimer(q.nextSweep)
	}
}

// OnTimer implements core.TimerHandler: emit and drop closed sessions.
func (q *q11Session) OnTimer(ctx core.Context, nowNS int64) {
	for bidder, ivs := range q.sessions.Sweep(nowNS) {
		for _, iv := range ivs {
			ctx.Emit(bidder, &Q11Result{Bidder: bidder, Count: iv.Count, Start: iv.Start, End: iv.End})
		}
	}
	if q.sessions.OpenSessions() > 0 {
		q.nextSweep = nowNS + int64(q.gap)
		ctx.SetTimer(q.nextSweep)
	} else {
		q.nextSweep = 0
	}
}

// Snapshot implements core.Operator.
func (q *q11Session) Snapshot(enc *wire.Encoder) {
	enc.Varint(int64(q.gap))
	q.sessions.Snapshot(enc)
}

// Restore implements core.Operator.
func (q *q11Session) Restore(dec *wire.Decoder) error {
	q.gap = time.Duration(dec.Varint())
	if err := dec.Err(); err != nil {
		return err
	}
	// The pending timer does not survive recovery; the next event re-arms
	// the sweep.
	q.nextSweep = 0
	return q.sessions.Restore(dec)
}

func buildQ11(gap time.Duration) *core.JobSpec {
	return &core.JobSpec{
		Name: "q11",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "keyBy", New: func(int) core.Operator { return bidKeyBy{} }},
			{Name: "session", New: func(int) core.Operator { return newQ11Session(gap) }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Hash},
			{From: 2, To: 3, Part: core.Forward},
		},
	}
}
