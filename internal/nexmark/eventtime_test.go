package nexmark

import (
	"testing"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/wire"
)

func etBid(bidder uint64, ts int64) core.Event {
	return core.Event{
		Key:     bidder,
		Value:   &Bid{Auction: 1, Bidder: bidder, Price: 100, DateTime: ts},
		EventNS: ts,
	}
}

func TestQ12ETWindowAssignment(t *testing.T) {
	c := newQ12CountET(100 * time.Nanosecond)
	ctx := &fakeCtx{wm: -1 << 62}
	c.OnEvent(ctx, etBid(7, 10))
	c.OnEvent(ctx, etBid(7, 90))
	c.OnEvent(ctx, etBid(8, 150))
	if len(c.windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(c.windows))
	}
	if c.windows[0][7] != 2 || c.windows[100][8] != 1 {
		t.Fatalf("windows = %v", c.windows)
	}
	if len(ctx.emitted) != 0 {
		t.Fatal("nothing should fire before a watermark")
	}
}

func TestQ12ETFiresOnWatermark(t *testing.T) {
	c := newQ12CountET(100 * time.Nanosecond)
	ctx := &fakeCtx{wm: -1 << 62}
	c.OnEvent(ctx, etBid(7, 10))
	c.OnEvent(ctx, etBid(9, 20))
	c.OnEvent(ctx, etBid(8, 150))

	c.OnWatermark(ctx, 99) // window [0,100) not yet complete
	if len(ctx.emitted) != 0 {
		t.Fatal("fired before window end")
	}
	c.OnWatermark(ctx, 100)
	if len(ctx.emitted) != 2 {
		t.Fatalf("emitted = %d, want 2", len(ctx.emitted))
	}
	// Sorted by bidder for deterministic re-fire.
	if ctx.emitted[0].key != 7 || ctx.emitted[1].key != 9 {
		t.Fatalf("emission order = %v, %v", ctx.emitted[0].key, ctx.emitted[1].key)
	}
	r := ctx.emitted[0].v.(*Q12Result)
	if r.Bidder != 7 || r.Count != 1 || r.Window != 0 {
		t.Fatalf("result = %+v", r)
	}
	if len(c.windows) != 1 {
		t.Fatalf("fired window not evicted: %v", c.windows)
	}
}

func TestQ12ETDropsLate(t *testing.T) {
	c := newQ12CountET(100 * time.Nanosecond)
	ctx := &fakeCtx{wm: -1 << 62}
	c.OnEvent(ctx, etBid(7, 10))
	c.OnWatermark(ctx, 100)
	ctx.wm = 100
	c.OnEvent(ctx, etBid(7, 50)) // its window already fired
	if c.late != 1 {
		t.Fatalf("late = %d, want 1", c.late)
	}
	if len(c.windows) != 0 {
		t.Fatalf("late event opened a window: %v", c.windows)
	}
}

func TestQ12ETSnapshotRoundTrip(t *testing.T) {
	c := newQ12CountET(100 * time.Nanosecond)
	ctx := &fakeCtx{wm: -1 << 62}
	c.OnEvent(ctx, etBid(7, 10))
	c.OnEvent(ctx, etBid(8, 150))
	c.late = 3

	enc := wire.NewEncoder(nil)
	c.Snapshot(enc)
	restored := &q12CountET{}
	if err := restored.Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.win != c.win || restored.late != 3 || len(restored.windows) != 2 {
		t.Fatalf("restored = %+v", restored)
	}
	if restored.windows[0][7] != 1 || restored.windows[100][8] != 1 {
		t.Fatalf("restored windows = %v", restored.windows)
	}
}

func TestBidEventTime(t *testing.T) {
	if got := BidEventTime(1, &Bid{DateTime: 42}); got != 42 {
		t.Fatalf("BidEventTime = %d", got)
	}
}

func TestBuildQ12ET(t *testing.T) {
	job, err := Build("q12et", QueryConfig{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if job.Ops[0].Source == nil || job.Ops[0].Source.EventTime == nil {
		t.Fatal("q12et source must extract event time")
	}
	if _, err := job.Validate(4); err != nil {
		t.Fatal(err)
	}
	if job.IsCyclic() {
		t.Fatal("q12et must be acyclic")
	}
}
