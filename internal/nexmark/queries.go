package nexmark

import (
	"fmt"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/wire"
)

// QueryConfig tunes query parameters.
type QueryConfig struct {
	// Window is the tumbling processing-time window of Q8 and Q12, and the
	// sliding window size of Q5.
	Window time.Duration
	// Slide is the sliding-window step of Q5. Defaults to Window/2 and must
	// divide Window.
	Slide time.Duration
	// SessionGap is the inactivity gap closing a Q11 session. Defaults to
	// Window/2.
	SessionGap time.Duration
}

func (qc *QueryConfig) applyDefaults() {
	if qc.Window <= 0 {
		qc.Window = time.Second
	}
	if qc.Slide <= 0 {
		qc.Slide = qc.Window / 2
	}
	if qc.SessionGap <= 0 {
		qc.SessionGap = qc.Window / 2
	}
}

// Queries lists the NexMark queries this package implements. The paper
// evaluates q1, q3, q8 and q12; q2, q5 and q11 extend the workload library.
var Queries = []string{"q1", "q2", "q3", "q4", "q5", "q7", "q8", "q11", "q12", "q12et"}

// Build returns the dataflow job of the named query (q1, q2, q3, q5, q8,
// q11, q12).
func Build(name string, qc QueryConfig) (*core.JobSpec, error) {
	qc.applyDefaults()
	switch name {
	case "q1", "Q1":
		return buildQ1(), nil
	case "q2", "Q2":
		return buildQ2(), nil
	case "q3", "Q3":
		return buildQ3(), nil
	case "q4", "Q4":
		return buildQ4(), nil
	case "q5", "Q5":
		return buildQ5(qc.Window, qc.Slide), nil
	case "q7", "Q7":
		return buildQ7(qc.Window), nil
	case "q8", "Q8":
		return buildQ8(qc.Window), nil
	case "q11", "Q11":
		return buildQ11(qc.SessionGap), nil
	case "q12", "Q12":
		return buildQ12(qc.Window), nil
	case "q12et", "Q12ET":
		return buildQ12ET(qc.Window), nil
	default:
		return nil, fmt.Errorf("nexmark: unknown query %q", name)
	}
}

// TopicsFor lists the topics the named query consumes.
func TopicsFor(name string) []string {
	switch name {
	case "q1", "Q1", "q2", "Q2", "q5", "Q5", "q7", "Q7", "q11", "Q11", "q12", "Q12", "q12et", "Q12ET":
		return []string{TopicBids}
	case "q3", "Q3", "q8", "Q8":
		return []string{TopicPersons, TopicAuctions}
	case "q4", "Q4":
		return []string{TopicAuctions, TopicBids}
	default:
		return nil
	}
}

// ---- Q1: currency conversion (stateless map, no shuffling) ----

// q1Map converts bid prices from USD to EUR (the classic 0.908 rate).
type q1Map struct{}

// OnEvent implements core.Operator.
func (q1Map) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	ctx.Emit(ev.Key, &Q1Result{
		Auction:  b.Auction,
		Bidder:   b.Bidder,
		PriceEur: b.Price * 908 / 1000,
		DateTime: b.DateTime,
	})
}

// Snapshot implements core.Operator (stateless).
func (q1Map) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (q1Map) Restore(dec *wire.Decoder) error { return nil }

func buildQ1() *core.JobSpec {
	return &core.JobSpec{
		Name: "q1",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "map", New: func(int) core.Operator { return q1Map{} }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Forward},
		},
	}
}

// ---- Q3: incremental stateful join with filters and shuffling ----

// personFilter passes persons from OR, ID or CA, keyed by person id.
type personFilter struct{}

// OnEvent implements core.Operator.
func (personFilter) OnEvent(ctx core.Context, ev core.Event) {
	p := ev.Value.(*Person)
	switch p.State {
	case "OR", "ID", "CA":
		ctx.Emit(p.ID, p)
	}
}

// Snapshot implements core.Operator.
func (personFilter) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (personFilter) Restore(dec *wire.Decoder) error { return nil }

// auctionFilter passes auctions of category 10, keyed by seller.
type auctionFilter struct{}

// OnEvent implements core.Operator.
func (auctionFilter) OnEvent(ctx core.Context, ev core.Event) {
	a := ev.Value.(*Auction)
	if a.Category == 10 {
		ctx.Emit(a.Seller, a)
	}
}

// Snapshot implements core.Operator.
func (auctionFilter) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (auctionFilter) Restore(dec *wire.Decoder) error { return nil }

// q3Join is the incremental two-sided join: persons and auctions keyed by
// person id = seller. Both sides are retained (the paper's "state grows"
// observation for Q3).
type q3Join struct {
	persons  map[uint64]*Person
	auctions map[uint64][]uint64 // seller -> auction ids seen before the person
}

func newQ3Join() *q3Join {
	return &q3Join{persons: make(map[uint64]*Person), auctions: make(map[uint64][]uint64)}
}

// OnEvent implements core.Operator.
func (j *q3Join) OnEvent(ctx core.Context, ev core.Event) {
	switch v := ev.Value.(type) {
	case *Person:
		j.persons[v.ID] = v
		for _, auction := range j.auctions[v.ID] {
			ctx.Emit(v.ID, &Q3Result{Name: v.Name, City: v.City, State: v.State, Auction: auction})
		}
		delete(j.auctions, v.ID)
	case *Auction:
		if p, ok := j.persons[v.Seller]; ok {
			ctx.Emit(p.ID, &Q3Result{Name: p.Name, City: p.City, State: p.State, Auction: v.ID})
			return
		}
		j.auctions[v.Seller] = append(j.auctions[v.Seller], v.ID)
	}
}

// Snapshot implements core.Operator.
func (j *q3Join) Snapshot(enc *wire.Encoder) {
	enc.Uvarint(uint64(len(j.persons)))
	for _, p := range j.persons {
		p.MarshalWire(enc)
	}
	enc.Uvarint(uint64(len(j.auctions)))
	for seller, ids := range j.auctions {
		enc.Uvarint(seller)
		enc.UvarintSlice(ids)
	}
}

// Restore implements core.Operator.
func (j *q3Join) Restore(dec *wire.Decoder) error {
	np := int(dec.Uvarint())
	j.persons = make(map[uint64]*Person, np)
	for i := 0; i < np; i++ {
		v, err := decodePerson(dec)
		if err != nil {
			return err
		}
		p := v.(*Person)
		j.persons[p.ID] = p
	}
	na := int(dec.Uvarint())
	j.auctions = make(map[uint64][]uint64, na)
	for i := 0; i < na; i++ {
		seller := dec.Uvarint()
		j.auctions[seller] = dec.UvarintSlice()
	}
	return dec.Err()
}

func buildQ3() *core.JobSpec {
	return &core.JobSpec{
		Name: "q3",
		Ops: []core.OpSpec{
			{Name: "persons", Source: &core.SourceSpec{Topic: TopicPersons}},
			{Name: "auctions", Source: &core.SourceSpec{Topic: TopicAuctions}},
			{Name: "filterP", New: func(int) core.Operator { return personFilter{} }},
			{Name: "filterA", New: func(int) core.Operator { return auctionFilter{} }},
			{Name: "join", New: func(int) core.Operator { return newQ3Join() }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 2, Part: core.Forward},
			{From: 1, To: 3, Part: core.Forward},
			{From: 2, To: 4, Part: core.Hash},
			{From: 3, To: 4, Part: core.Hash},
			{From: 4, To: 5, Part: core.Forward},
		},
	}
}

// ---- Q8: windowed join (running processing-time tumbling window) ----

// q8Window holds the per-window join state.
type q8Window struct {
	persons  map[uint64]string   // id -> name
	auctions map[uint64][]uint64 // seller -> auction ids
}

// q8Join joins new persons with new auctions inside a processing-time
// tumbling window. Running variant: matches are emitted on arrival; window
// state is dropped on expiry (the paper's "running window").
type q8Join struct {
	win     int64
	windows map[int64]*q8Window
}

func newQ8Join(win time.Duration) *q8Join {
	return &q8Join{win: win.Nanoseconds(), windows: make(map[int64]*q8Window)}
}

func (j *q8Join) window(start int64) *q8Window {
	w, ok := j.windows[start]
	if !ok {
		w = &q8Window{persons: make(map[uint64]string), auctions: make(map[uint64][]uint64)}
		j.windows[start] = w
	}
	return w
}

// OnEvent implements core.Operator.
func (j *q8Join) OnEvent(ctx core.Context, ev core.Event) {
	now := ctx.NowNS()
	start := now - now%j.win
	w := j.window(start)
	switch v := ev.Value.(type) {
	case *Person:
		w.persons[v.ID] = v.Name
		for _, auction := range w.auctions[v.ID] {
			ctx.Emit(v.ID, &Q8Result{Person: v.ID, Name: v.Name, Auction: auction, Window: start})
		}
		delete(w.auctions, v.ID)
	case *Auction:
		if name, ok := w.persons[v.Seller]; ok {
			ctx.Emit(v.Seller, &Q8Result{Person: v.Seller, Name: name, Auction: v.ID, Window: start})
			return
		}
		w.auctions[v.Seller] = append(w.auctions[v.Seller], v.ID)
	}
	ctx.SetTimer(start + 2*j.win)
}

// OnTimer implements core.TimerHandler: drop expired windows.
func (j *q8Join) OnTimer(ctx core.Context, nowNS int64) {
	cur := nowNS - nowNS%j.win
	for start := range j.windows {
		if start < cur {
			delete(j.windows, start)
		}
	}
	if len(j.windows) > 0 {
		ctx.SetTimer(cur + 2*j.win)
	}
}

// Snapshot implements core.Operator.
func (j *q8Join) Snapshot(enc *wire.Encoder) {
	enc.Varint(j.win)
	enc.Uvarint(uint64(len(j.windows)))
	for start, w := range j.windows {
		enc.Varint(start)
		enc.Uvarint(uint64(len(w.persons)))
		for id, name := range w.persons {
			enc.Uvarint(id)
			enc.String(name)
		}
		enc.Uvarint(uint64(len(w.auctions)))
		for seller, ids := range w.auctions {
			enc.Uvarint(seller)
			enc.UvarintSlice(ids)
		}
	}
}

// Restore implements core.Operator.
func (j *q8Join) Restore(dec *wire.Decoder) error {
	j.win = dec.Varint()
	n := int(dec.Uvarint())
	j.windows = make(map[int64]*q8Window, n)
	for i := 0; i < n; i++ {
		start := dec.Varint()
		w := &q8Window{}
		np := int(dec.Uvarint())
		w.persons = make(map[uint64]string, np)
		for k := 0; k < np; k++ {
			id := dec.Uvarint()
			w.persons[id] = dec.String()
		}
		na := int(dec.Uvarint())
		w.auctions = make(map[uint64][]uint64, na)
		for k := 0; k < na; k++ {
			seller := dec.Uvarint()
			w.auctions[seller] = dec.UvarintSlice()
		}
		j.windows[start] = w
	}
	return dec.Err()
}

func buildQ8(win time.Duration) *core.JobSpec {
	return &core.JobSpec{
		Name: "q8",
		Ops: []core.OpSpec{
			{Name: "persons", Source: &core.SourceSpec{Topic: TopicPersons}},
			{Name: "auctions", Source: &core.SourceSpec{Topic: TopicAuctions}},
			{Name: "join", New: func(int) core.Operator { return newQ8Join(win) }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 2, Part: core.Hash},
			{From: 1, To: 2, Part: core.Hash},
			{From: 2, To: 3, Part: core.Forward},
		},
	}
}

// ---- Q12: windowed running count of bids per bidder ----

// bidKeyBy rekeys bids by bidder (the "minor shuffling" of Q12).
type bidKeyBy struct{}

// OnEvent implements core.Operator.
func (bidKeyBy) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	ctx.Emit(b.Bidder, b)
}

// Snapshot implements core.Operator.
func (bidKeyBy) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (bidKeyBy) Restore(dec *wire.Decoder) error { return nil }

// q12Count maintains running per-bidder counts per processing-time window.
type q12Count struct {
	win     int64
	windows map[int64]map[uint64]uint64
}

func newQ12Count(win time.Duration) *q12Count {
	return &q12Count{win: win.Nanoseconds(), windows: make(map[int64]map[uint64]uint64)}
}

// OnEvent implements core.Operator.
func (c *q12Count) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	now := ctx.NowNS()
	start := now - now%c.win
	w, ok := c.windows[start]
	if !ok {
		w = make(map[uint64]uint64)
		c.windows[start] = w
	}
	w[b.Bidder]++
	ctx.Emit(b.Bidder, &Q12Result{Bidder: b.Bidder, Count: w[b.Bidder], Window: start})
	ctx.SetTimer(start + 2*c.win)
}

// OnTimer implements core.TimerHandler.
func (c *q12Count) OnTimer(ctx core.Context, nowNS int64) {
	cur := nowNS - nowNS%c.win
	for start := range c.windows {
		if start < cur {
			delete(c.windows, start)
		}
	}
	if len(c.windows) > 0 {
		ctx.SetTimer(cur + 2*c.win)
	}
}

// Snapshot implements core.Operator.
func (c *q12Count) Snapshot(enc *wire.Encoder) {
	enc.Varint(c.win)
	enc.Uvarint(uint64(len(c.windows)))
	for start, w := range c.windows {
		enc.Varint(start)
		enc.Uvarint(uint64(len(w)))
		for bidder, count := range w {
			enc.Uvarint(bidder)
			enc.Uvarint(count)
		}
	}
}

// Restore implements core.Operator.
func (c *q12Count) Restore(dec *wire.Decoder) error {
	c.win = dec.Varint()
	n := int(dec.Uvarint())
	c.windows = make(map[int64]map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		start := dec.Varint()
		m := int(dec.Uvarint())
		w := make(map[uint64]uint64, m)
		for k := 0; k < m; k++ {
			bidder := dec.Uvarint()
			w[bidder] = dec.Uvarint()
		}
		c.windows[start] = w
	}
	return dec.Err()
}

func buildQ12(win time.Duration) *core.JobSpec {
	return &core.JobSpec{
		Name: "q12",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "keyBy", New: func(int) core.Operator { return bidKeyBy{} }},
			{Name: "count", New: func(int) core.Operator { return newQ12Count(win) }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Hash},
			{From: 2, To: 3, Part: core.Forward},
		},
	}
}

// ---- shared sink ----

// CountSink counts records; as checkpointed state the count participates in
// exactly-once verification.
type CountSink struct {
	Count uint64
}

// NewCountSink returns an empty sink.
func NewCountSink() *CountSink { return &CountSink{} }

// OnEvent implements core.Operator.
func (s *CountSink) OnEvent(ctx core.Context, ev core.Event) { s.Count++ }

// Snapshot implements core.Operator.
func (s *CountSink) Snapshot(enc *wire.Encoder) { enc.Uvarint(s.Count) }

// Restore implements core.Operator.
func (s *CountSink) Restore(dec *wire.Decoder) error {
	s.Count = dec.Uvarint()
	return dec.Err()
}
