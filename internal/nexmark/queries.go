package nexmark

import (
	"fmt"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/wire"
)

// QueryConfig tunes query parameters.
type QueryConfig struct {
	// Window is the tumbling processing-time window of Q8 and Q12, and the
	// sliding window size of Q5.
	Window time.Duration
	// Slide is the sliding-window step of Q5. Defaults to Window/2 and must
	// divide Window.
	Slide time.Duration
	// SessionGap is the inactivity gap closing a Q11 session. Defaults to
	// Window/2.
	SessionGap time.Duration
}

func (qc *QueryConfig) applyDefaults() {
	if qc.Window <= 0 {
		qc.Window = time.Second
	}
	if qc.Slide <= 0 {
		qc.Slide = qc.Window / 2
	}
	if qc.SessionGap <= 0 {
		qc.SessionGap = qc.Window / 2
	}
}

// Queries lists the NexMark queries this package implements. The paper
// evaluates q1, q3, q8 and q12; q2, q5 and q11 extend the workload library.
var Queries = []string{"q1", "q2", "q3", "q4", "q5", "q7", "q8", "q11", "q12", "q12et"}

// Build returns the dataflow job of the named query (q1, q2, q3, q5, q8,
// q11, q12).
func Build(name string, qc QueryConfig) (*core.JobSpec, error) {
	qc.applyDefaults()
	switch name {
	case "q1", "Q1":
		return buildQ1(), nil
	case "q2", "Q2":
		return buildQ2(), nil
	case "q3", "Q3":
		return buildQ3(), nil
	case "q4", "Q4":
		return buildQ4(), nil
	case "q5", "Q5":
		return buildQ5(qc.Window, qc.Slide), nil
	case "q7", "Q7":
		return buildQ7(qc.Window), nil
	case "q8", "Q8":
		return buildQ8(qc.Window), nil
	case "q11", "Q11":
		return buildQ11(qc.SessionGap), nil
	case "q12", "Q12":
		return buildQ12(qc.Window), nil
	case "q12et", "Q12ET":
		return buildQ12ET(qc.Window), nil
	default:
		return nil, fmt.Errorf("nexmark: unknown query %q", name)
	}
}

// TopicsFor lists the topics the named query consumes.
func TopicsFor(name string) []string {
	switch name {
	case "q1", "Q1", "q2", "Q2", "q5", "Q5", "q7", "Q7", "q11", "Q11", "q12", "Q12", "q12et", "Q12ET":
		return []string{TopicBids}
	case "q3", "Q3", "q8", "Q8":
		return []string{TopicPersons, TopicAuctions}
	case "q4", "Q4":
		return []string{TopicAuctions, TopicBids}
	default:
		return nil
	}
}

// ---- Q1: currency conversion (stateless map, no shuffling) ----

// q1Map converts bid prices from USD to EUR (the classic 0.908 rate).
// out is a per-instance emit scratch: Context.Emit serializes the value
// synchronously, so reusing it avoids one allocation per record on the
// hottest map in the benchmark suite.
type q1Map struct{ out Q1Result }

// OnEvent implements core.Operator.
func (m *q1Map) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	m.out = Q1Result{
		Auction:  b.Auction,
		Bidder:   b.Bidder,
		PriceEur: b.Price * 908 / 1000,
		DateTime: b.DateTime,
	}
	ctx.Emit(ev.Key, &m.out)
}

// Snapshot implements core.Operator (stateless).
func (*q1Map) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (*q1Map) Restore(dec *wire.Decoder) error { return nil }

func buildQ1() *core.JobSpec {
	return &core.JobSpec{
		Name: "q1",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "map", New: func(int) core.Operator { return &q1Map{} }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Forward},
		},
	}
}

// ---- Q3: incremental stateful join with filters and shuffling ----

// personFilter passes persons from OR, ID or CA, keyed by person id.
type personFilter struct{}

// OnEvent implements core.Operator.
func (personFilter) OnEvent(ctx core.Context, ev core.Event) {
	p := ev.Value.(*Person)
	switch p.State {
	case "OR", "ID", "CA":
		ctx.Emit(p.ID, p)
	}
}

// Snapshot implements core.Operator.
func (personFilter) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (personFilter) Restore(dec *wire.Decoder) error { return nil }

// auctionFilter passes auctions of category 10, keyed by seller.
type auctionFilter struct{}

// OnEvent implements core.Operator.
func (auctionFilter) OnEvent(ctx core.Context, ev core.Event) {
	a := ev.Value.(*Auction)
	if a.Category == 10 {
		ctx.Emit(a.Seller, a)
	}
}

// Snapshot implements core.Operator.
func (auctionFilter) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (auctionFilter) Restore(dec *wire.Decoder) error { return nil }

// q3Join is the incremental two-sided join: persons and auctions keyed by
// person id = seller. Both sides are retained (the paper's "state grows"
// observation for Q3) — in the engine-owned keyed state backend, so delta
// checkpoints upload only the per-event churn instead of the ever-growing
// join tables.
type q3Join struct {
	scratch *wire.Encoder
}

func newQ3Join() *q3Join {
	return &q3Join{scratch: wire.NewEncoder(nil)}
}

// UsesKeyedState implements core.KeyedStateUser.
func (*q3Join) UsesKeyedState() {}

// Backend key layout: the person id / seller in the upper bits, one
// namespace bit (retained person vs pending-auction list) at the bottom.
func q3PersonKey(id uint64) uint64  { return id<<1 | 0 }
func q3AuctionKey(id uint64) uint64 { return id<<1 | 1 }

// OnEvent implements core.Operator.
func (j *q3Join) OnEvent(ctx core.Context, ev core.Event) {
	kv := ctx.KeyedState()
	switch v := ev.Value.(type) {
	case *Person:
		j.scratch.Reset()
		v.MarshalWire(j.scratch)
		kv.PutOwned(q3PersonKey(v.ID), ownedCopy(j.scratch))
		if b, ok := kv.Get(q3AuctionKey(v.ID)); ok {
			for _, auction := range wire.NewDecoder(b).UvarintSlice() {
				ctx.Emit(v.ID, &Q3Result{Name: v.Name, City: v.City, State: v.State, Auction: auction})
			}
			kv.Delete(q3AuctionKey(v.ID))
		}
	case *Auction:
		if b, ok := kv.Get(q3PersonKey(v.Seller)); ok {
			pv, err := decodePerson(wire.NewDecoder(b))
			if err != nil {
				panic(fmt.Sprintf("nexmark: q3 person state corrupt: %v", err))
			}
			p := pv.(*Person)
			ctx.Emit(p.ID, &Q3Result{Name: p.Name, City: p.City, State: p.State, Auction: v.ID})
			return
		}
		var ids []uint64
		if b, ok := kv.Get(q3AuctionKey(v.Seller)); ok {
			ids = wire.NewDecoder(b).UvarintSlice()
		}
		ids = append(ids, v.ID)
		j.scratch.Reset()
		j.scratch.UvarintSlice(ids)
		kv.PutOwned(q3AuctionKey(v.Seller), ownedCopy(j.scratch))
	}
}

// ownedCopy snapshots a scratch encoder's contents into an exactly-sized
// buffer whose ownership transfers to the keyed store via PutOwned,
// keeping the scratch encoder reusable for the next event. The cost is the
// same one allocation + copy Put would take; the point is the explicit
// ownership transfer — the backend's copy-on-write captures rely on stored
// buffers never being touched again by the writer, and PutOwned states
// that contract at the call site. Sites that already hold a throwaway
// owned buffer (the q8 person name) genuinely skip Put's defensive copy.
func ownedCopy(enc *wire.Encoder) []byte {
	buf := make([]byte, enc.Len())
	copy(buf, enc.Bytes())
	return buf
}

// Snapshot implements core.Operator. The join state lives in the keyed
// backend and is persisted by the engine.
func (j *q3Join) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (j *q3Join) Restore(dec *wire.Decoder) error { return nil }

func buildQ3() *core.JobSpec {
	return &core.JobSpec{
		Name: "q3",
		Ops: []core.OpSpec{
			{Name: "persons", Source: &core.SourceSpec{Topic: TopicPersons}},
			{Name: "auctions", Source: &core.SourceSpec{Topic: TopicAuctions}},
			{Name: "filterP", New: func(int) core.Operator { return personFilter{} }},
			{Name: "filterA", New: func(int) core.Operator { return auctionFilter{} }},
			{Name: "join", New: func(int) core.Operator { return newQ3Join() }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 2, Part: core.Forward},
			{From: 1, To: 3, Part: core.Forward},
			{From: 2, To: 4, Part: core.Hash},
			{From: 3, To: 4, Part: core.Hash},
			{From: 4, To: 5, Part: core.Forward},
		},
	}
}

// ---- Q8: windowed join (running processing-time tumbling window) ----

// q8Join joins new persons with new auctions inside a processing-time
// tumbling window. Running variant: matches are emitted on arrival; window
// state is dropped on expiry (the paper's "running window"). All window
// contents live in the engine-owned keyed state backend.
type q8Join struct {
	win     int64
	scratch *wire.Encoder
}

func newQ8Join(win time.Duration) *q8Join {
	return &q8Join{win: win.Nanoseconds(), scratch: wire.NewEncoder(nil)}
}

// UsesKeyedState implements core.KeyedStateUser.
func (*q8Join) UsesKeyedState() {}

// Backend key layout: window index in the high 32 bits, person/seller id in
// the middle, one namespace bit (person name vs pending-auction list) at
// the bottom. NexMark ids are generator sequence numbers, far below 2^31.
func q8Key(widx, id, side uint64) uint64 { return widx<<32 | id<<1 | side }

// OnEvent implements core.Operator.
func (j *q8Join) OnEvent(ctx core.Context, ev core.Event) {
	now := ctx.NowNS()
	start := now - now%j.win
	widx := uint64(start / j.win)
	kv := ctx.KeyedState()
	switch v := ev.Value.(type) {
	case *Person:
		// []byte(name) already allocates an owned copy; PutOwned stores it
		// without the second copy Put would take.
		kv.PutOwned(q8Key(widx, v.ID, 0), []byte(v.Name))
		if b, ok := kv.Get(q8Key(widx, v.ID, 1)); ok {
			for _, auction := range wire.NewDecoder(b).UvarintSlice() {
				ctx.Emit(v.ID, &Q8Result{Person: v.ID, Name: v.Name, Auction: auction, Window: start})
			}
			kv.Delete(q8Key(widx, v.ID, 1))
		}
	case *Auction:
		if name, ok := kv.Get(q8Key(widx, v.Seller, 0)); ok {
			ctx.Emit(v.Seller, &Q8Result{Person: v.Seller, Name: string(name), Auction: v.ID, Window: start})
			return
		}
		var ids []uint64
		if b, ok := kv.Get(q8Key(widx, v.Seller, 1)); ok {
			ids = wire.NewDecoder(b).UvarintSlice()
		}
		ids = append(ids, v.ID)
		j.scratch.Reset()
		j.scratch.UvarintSlice(ids)
		kv.PutOwned(q8Key(widx, v.Seller, 1), ownedCopy(j.scratch))
	}
	ctx.SetTimer(start + 2*j.win)
}

// OnTimer implements core.TimerHandler: drop expired windows.
func (j *q8Join) OnTimer(ctx core.Context, nowNS int64) {
	cur := nowNS - nowNS%j.win
	curIdx := uint64(cur / j.win)
	kv := ctx.KeyedState()
	var expired []uint64
	kv.Range(func(k uint64, _ []byte) bool {
		if k>>32 < curIdx {
			expired = append(expired, k)
		}
		return true
	})
	for _, k := range expired {
		kv.Delete(k)
	}
	if kv.Len() > 0 {
		ctx.SetTimer(cur + 2*j.win)
	}
}

// Snapshot implements core.Operator. Window contents live in the keyed
// backend; only the window width is operator state.
func (j *q8Join) Snapshot(enc *wire.Encoder) { enc.Varint(j.win) }

// Restore implements core.Operator.
func (j *q8Join) Restore(dec *wire.Decoder) error {
	j.win = dec.Varint()
	return dec.Err()
}

func buildQ8(win time.Duration) *core.JobSpec {
	return &core.JobSpec{
		Name: "q8",
		Ops: []core.OpSpec{
			{Name: "persons", Source: &core.SourceSpec{Topic: TopicPersons}},
			{Name: "auctions", Source: &core.SourceSpec{Topic: TopicAuctions}},
			{Name: "join", New: func(int) core.Operator { return newQ8Join(win) }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 2, Part: core.Hash},
			{From: 1, To: 2, Part: core.Hash},
			{From: 2, To: 3, Part: core.Forward},
		},
	}
}

// ---- Q12: windowed running count of bids per bidder ----

// bidKeyBy rekeys bids by bidder (the "minor shuffling" of Q12).
type bidKeyBy struct{}

// OnEvent implements core.Operator.
func (bidKeyBy) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	ctx.Emit(b.Bidder, b)
}

// Snapshot implements core.Operator.
func (bidKeyBy) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (bidKeyBy) Restore(dec *wire.Decoder) error { return nil }

// q12Count maintains running per-bidder counts per processing-time window,
// stored in the engine-owned keyed state backend.
type q12Count struct {
	win     int64
	scratch *wire.Encoder
}

func newQ12Count(win time.Duration) *q12Count {
	return &q12Count{win: win.Nanoseconds(), scratch: wire.NewEncoder(nil)}
}

// UsesKeyedState implements core.KeyedStateUser.
func (*q12Count) UsesKeyedState() {}

// Backend key layout: window index in the high 32 bits, bidder id below.
// NexMark bidder ids are generator sequence numbers, far below 2^32.
func q12Key(widx, bidder uint64) uint64 { return widx<<32 | bidder }

// OnEvent implements core.Operator.
func (c *q12Count) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	now := ctx.NowNS()
	start := now - now%c.win
	widx := uint64(start / c.win)
	kv := ctx.KeyedState()
	var count uint64
	if buf, ok := kv.Get(q12Key(widx, b.Bidder)); ok {
		count = wire.NewDecoder(buf).Uvarint()
	}
	count++
	c.scratch.Reset()
	c.scratch.Uvarint(count)
	kv.PutOwned(q12Key(widx, b.Bidder), ownedCopy(c.scratch))
	ctx.Emit(b.Bidder, &Q12Result{Bidder: b.Bidder, Count: count, Window: start})
	ctx.SetTimer(start + 2*c.win)
}

// OnTimer implements core.TimerHandler.
func (c *q12Count) OnTimer(ctx core.Context, nowNS int64) {
	cur := nowNS - nowNS%c.win
	curIdx := uint64(cur / c.win)
	kv := ctx.KeyedState()
	var expired []uint64
	kv.Range(func(k uint64, _ []byte) bool {
		if k>>32 < curIdx {
			expired = append(expired, k)
		}
		return true
	})
	for _, k := range expired {
		kv.Delete(k)
	}
	if kv.Len() > 0 {
		ctx.SetTimer(cur + 2*c.win)
	}
}

// Snapshot implements core.Operator. Counts live in the keyed backend; only
// the window width is operator state.
func (c *q12Count) Snapshot(enc *wire.Encoder) { enc.Varint(c.win) }

// Restore implements core.Operator.
func (c *q12Count) Restore(dec *wire.Decoder) error {
	c.win = dec.Varint()
	return dec.Err()
}

func buildQ12(win time.Duration) *core.JobSpec {
	return &core.JobSpec{
		Name: "q12",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "keyBy", New: func(int) core.Operator { return bidKeyBy{} }},
			{Name: "count", New: func(int) core.Operator { return newQ12Count(win) }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Hash},
			{From: 2, To: 3, Part: core.Forward},
		},
	}
}

// ---- shared sink ----

// CountSink counts records; as checkpointed state the count participates in
// exactly-once verification.
type CountSink struct {
	Count uint64
}

// NewCountSink returns an empty sink.
func NewCountSink() *CountSink { return &CountSink{} }

// OnEvent implements core.Operator.
func (s *CountSink) OnEvent(ctx core.Context, ev core.Event) { s.Count++ }

// Snapshot implements core.Operator.
func (s *CountSink) Snapshot(enc *wire.Encoder) { enc.Uvarint(s.Count) }

// Restore implements core.Operator.
func (s *CountSink) Restore(dec *wire.Decoder) error {
	s.Count = dec.Uvarint()
	return dec.Err()
}
