// Package nexmark implements the NexMark e-commerce streaming benchmark
// pieces the paper evaluates on: the three event types (persons, auctions,
// bids), a deterministic generator with a hot-items skew knob, and queries
// Q1, Q3, Q8 and Q12 expressed as dataflow jobs for the core engine.
package nexmark

import (
	"checkmate/internal/wire"
)

// Wire type IDs used by this package (10..49).
const (
	typePerson    = 10
	typeAuction   = 11
	typeBid       = 12
	typeQ1Result  = 13
	typeQ3Result  = 14
	typeQ8Result  = 15
	typeQ12Result = 16
)

// Person is a NexMark person record.
type Person struct {
	ID         uint64
	Name       string
	Email      string
	CreditCard string
	City       string
	State      string
	DateTime   int64
	Extra      string
}

// TypeID implements wire.Value.
func (p *Person) TypeID() uint16 { return typePerson }

// MarshalWire implements wire.Value.
func (p *Person) MarshalWire(e *wire.Encoder) {
	e.Uvarint(p.ID)
	e.String(p.Name)
	e.String(p.Email)
	e.String(p.CreditCard)
	e.String(p.City)
	e.String(p.State)
	e.Varint(p.DateTime)
	e.String(p.Extra)
}

// DecodeWireInto implements wire.Reusable. String fields alias the wire
// buffer (StringRef): frames are immutable for the duration of delivery, so
// the decode hot path pays no per-string allocation — and because the value
// is only valid until the next record is decoded, consumers copy anything
// they retain (see the frame ownership rule in core).
func (p *Person) DecodeWireInto(d *wire.Decoder) error {
	p.ID = d.Uvarint()
	p.Name = d.StringRef()
	p.Email = d.StringRef()
	p.CreditCard = d.StringRef()
	p.City = d.StringRef()
	p.State = d.StringRef()
	p.DateTime = d.Varint()
	p.Extra = d.StringRef()
	return d.Err()
}

func decodePerson(d *wire.Decoder) (wire.Value, error) {
	p := &Person{}
	return p, p.DecodeWireInto(d)
}

// Auction is a NexMark auction record.
type Auction struct {
	ID          uint64
	ItemName    string
	Description string
	InitialBid  uint64
	Reserve     uint64
	DateTime    int64
	Expires     int64
	Seller      uint64
	Category    uint64
	Extra       string
}

// TypeID implements wire.Value.
func (a *Auction) TypeID() uint16 { return typeAuction }

// MarshalWire implements wire.Value.
func (a *Auction) MarshalWire(e *wire.Encoder) {
	e.Uvarint(a.ID)
	e.String(a.ItemName)
	e.String(a.Description)
	e.Uvarint(a.InitialBid)
	e.Uvarint(a.Reserve)
	e.Varint(a.DateTime)
	e.Varint(a.Expires)
	e.Uvarint(a.Seller)
	e.Uvarint(a.Category)
	e.String(a.Extra)
}

// DecodeWireInto implements wire.Reusable (see Person.DecodeWireInto for
// the aliasing contract).
func (a *Auction) DecodeWireInto(d *wire.Decoder) error {
	a.ID = d.Uvarint()
	a.ItemName = d.StringRef()
	a.Description = d.StringRef()
	a.InitialBid = d.Uvarint()
	a.Reserve = d.Uvarint()
	a.DateTime = d.Varint()
	a.Expires = d.Varint()
	a.Seller = d.Uvarint()
	a.Category = d.Uvarint()
	a.Extra = d.StringRef()
	return d.Err()
}

func decodeAuction(d *wire.Decoder) (wire.Value, error) {
	a := &Auction{}
	return a, a.DecodeWireInto(d)
}

// Bid is a NexMark bid record.
type Bid struct {
	Auction  uint64
	Bidder   uint64
	Price    uint64
	Channel  string
	URL      string
	DateTime int64
	Extra    string
}

// TypeID implements wire.Value.
func (b *Bid) TypeID() uint16 { return typeBid }

// MarshalWire implements wire.Value.
func (b *Bid) MarshalWire(e *wire.Encoder) {
	e.Uvarint(b.Auction)
	e.Uvarint(b.Bidder)
	e.Uvarint(b.Price)
	e.String(b.Channel)
	e.String(b.URL)
	e.Varint(b.DateTime)
	e.String(b.Extra)
}

// DecodeWireInto implements wire.Reusable (see Person.DecodeWireInto for
// the aliasing contract).
func (b *Bid) DecodeWireInto(d *wire.Decoder) error {
	b.Auction = d.Uvarint()
	b.Bidder = d.Uvarint()
	b.Price = d.Uvarint()
	b.Channel = internChannel(d.StringRef())
	b.URL = d.StringRef()
	b.DateTime = d.Varint()
	b.Extra = d.StringRef()
	return d.Err()
}

func decodeBid(d *wire.Decoder) (wire.Value, error) {
	b := &Bid{}
	return b, b.DecodeWireInto(d)
}

// bidChannels is the closed set of channel names the generator produces;
// interning them detaches the (long-lived, frequently-retained) Channel
// field from the wire buffer without a copy per record.
var bidChannels = [...]string{"channel-a", "channel-b", "channel-c", "channel-d"}

func internChannel(s string) string {
	for _, c := range bidChannels {
		if s == c {
			return c
		}
	}
	return s
}

// Q1Result is the output of query 1 (currency conversion).
type Q1Result struct {
	Auction  uint64
	Bidder   uint64
	PriceEur uint64
	DateTime int64
}

// TypeID implements wire.Value.
func (r *Q1Result) TypeID() uint16 { return typeQ1Result }

// MarshalWire implements wire.Value.
func (r *Q1Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Auction)
	e.Uvarint(r.Bidder)
	e.Uvarint(r.PriceEur)
	e.Varint(r.DateTime)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q1Result) DecodeWireInto(d *wire.Decoder) error {
	r.Auction = d.Uvarint()
	r.Bidder = d.Uvarint()
	r.PriceEur = d.Uvarint()
	r.DateTime = d.Varint()
	return d.Err()
}

func decodeQ1Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q1Result{}
	return r, r.DecodeWireInto(d)
}

// Q3Result is the output of query 3 (persons joined with their auctions).
type Q3Result struct {
	Name    string
	City    string
	State   string
	Auction uint64
}

// TypeID implements wire.Value.
func (r *Q3Result) TypeID() uint16 { return typeQ3Result }

// MarshalWire implements wire.Value.
func (r *Q3Result) MarshalWire(e *wire.Encoder) {
	e.String(r.Name)
	e.String(r.City)
	e.String(r.State)
	e.Uvarint(r.Auction)
}

// DecodeWireInto implements wire.Reusable. Strings are copied (String, not
// StringRef): Q3 results are sink-bound and may be retained by the output
// collector.
func (r *Q3Result) DecodeWireInto(d *wire.Decoder) error {
	r.Name = d.String()
	r.City = d.String()
	r.State = d.String()
	r.Auction = d.Uvarint()
	return d.Err()
}

func decodeQ3Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q3Result{}
	return r, r.DecodeWireInto(d)
}

// Q8Result is the output of query 8 (new persons with new auctions in the
// same window).
type Q8Result struct {
	Person  uint64
	Name    string
	Auction uint64
	Window  int64
}

// TypeID implements wire.Value.
func (r *Q8Result) TypeID() uint16 { return typeQ8Result }

// MarshalWire implements wire.Value.
func (r *Q8Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Person)
	e.String(r.Name)
	e.Uvarint(r.Auction)
	e.Varint(r.Window)
}

// DecodeWireInto implements wire.Reusable (copying strings, like Q3Result).
func (r *Q8Result) DecodeWireInto(d *wire.Decoder) error {
	r.Person = d.Uvarint()
	r.Name = d.String()
	r.Auction = d.Uvarint()
	r.Window = d.Varint()
	return d.Err()
}

func decodeQ8Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q8Result{}
	return r, r.DecodeWireInto(d)
}

// Q12Result is the output of query 12 (running per-bidder bid counts in a
// processing-time window).
type Q12Result struct {
	Bidder uint64
	Count  uint64
	Window int64
}

// TypeID implements wire.Value.
func (r *Q12Result) TypeID() uint16 { return typeQ12Result }

// MarshalWire implements wire.Value.
func (r *Q12Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Bidder)
	e.Uvarint(r.Count)
	e.Varint(r.Window)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q12Result) DecodeWireInto(d *wire.Decoder) error {
	r.Bidder = d.Uvarint()
	r.Count = d.Uvarint()
	r.Window = d.Varint()
	return d.Err()
}

func decodeQ12Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q12Result{}
	return r, r.DecodeWireInto(d)
}

func init() {
	wire.RegisterType(typePerson, decodePerson)
	wire.RegisterType(typeAuction, decodeAuction)
	wire.RegisterType(typeBid, decodeBid)
	wire.RegisterType(typeQ1Result, decodeQ1Result)
	wire.RegisterType(typeQ3Result, decodeQ3Result)
	wire.RegisterType(typeQ8Result, decodeQ8Result)
	wire.RegisterType(typeQ12Result, decodeQ12Result)
}
