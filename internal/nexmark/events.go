// Package nexmark implements the NexMark e-commerce streaming benchmark
// pieces the paper evaluates on: the three event types (persons, auctions,
// bids), a deterministic generator with a hot-items skew knob, and queries
// Q1, Q3, Q8 and Q12 expressed as dataflow jobs for the core engine.
package nexmark

import (
	"checkmate/internal/wire"
)

// Wire type IDs used by this package (10..49).
const (
	typePerson    = 10
	typeAuction   = 11
	typeBid       = 12
	typeQ1Result  = 13
	typeQ3Result  = 14
	typeQ8Result  = 15
	typeQ12Result = 16
)

// Person is a NexMark person record.
type Person struct {
	ID         uint64
	Name       string
	Email      string
	CreditCard string
	City       string
	State      string
	DateTime   int64
	Extra      string
}

// TypeID implements wire.Value.
func (p *Person) TypeID() uint16 { return typePerson }

// MarshalWire implements wire.Value.
func (p *Person) MarshalWire(e *wire.Encoder) {
	e.Uvarint(p.ID)
	e.String(p.Name)
	e.String(p.Email)
	e.String(p.CreditCard)
	e.String(p.City)
	e.String(p.State)
	e.Varint(p.DateTime)
	e.String(p.Extra)
}

// decodePerson aliases string fields into the wire buffer (StringRef):
// envelopes and checkpoint blobs are immutable once filled, so the decode
// hot path pays no per-string allocation.
func decodePerson(d *wire.Decoder) (wire.Value, error) {
	p := &Person{
		ID:         d.Uvarint(),
		Name:       d.StringRef(),
		Email:      d.StringRef(),
		CreditCard: d.StringRef(),
		City:       d.StringRef(),
		State:      d.StringRef(),
		DateTime:   d.Varint(),
		Extra:      d.StringRef(),
	}
	return p, d.Err()
}

// Auction is a NexMark auction record.
type Auction struct {
	ID          uint64
	ItemName    string
	Description string
	InitialBid  uint64
	Reserve     uint64
	DateTime    int64
	Expires     int64
	Seller      uint64
	Category    uint64
	Extra       string
}

// TypeID implements wire.Value.
func (a *Auction) TypeID() uint16 { return typeAuction }

// MarshalWire implements wire.Value.
func (a *Auction) MarshalWire(e *wire.Encoder) {
	e.Uvarint(a.ID)
	e.String(a.ItemName)
	e.String(a.Description)
	e.Uvarint(a.InitialBid)
	e.Uvarint(a.Reserve)
	e.Varint(a.DateTime)
	e.Varint(a.Expires)
	e.Uvarint(a.Seller)
	e.Uvarint(a.Category)
	e.String(a.Extra)
}

func decodeAuction(d *wire.Decoder) (wire.Value, error) {
	a := &Auction{
		ID:          d.Uvarint(),
		ItemName:    d.StringRef(),
		Description: d.StringRef(),
		InitialBid:  d.Uvarint(),
		Reserve:     d.Uvarint(),
		DateTime:    d.Varint(),
		Expires:     d.Varint(),
		Seller:      d.Uvarint(),
		Category:    d.Uvarint(),
		Extra:       d.StringRef(),
	}
	return a, d.Err()
}

// Bid is a NexMark bid record.
type Bid struct {
	Auction  uint64
	Bidder   uint64
	Price    uint64
	Channel  string
	URL      string
	DateTime int64
	Extra    string
}

// TypeID implements wire.Value.
func (b *Bid) TypeID() uint16 { return typeBid }

// MarshalWire implements wire.Value.
func (b *Bid) MarshalWire(e *wire.Encoder) {
	e.Uvarint(b.Auction)
	e.Uvarint(b.Bidder)
	e.Uvarint(b.Price)
	e.String(b.Channel)
	e.String(b.URL)
	e.Varint(b.DateTime)
	e.String(b.Extra)
}

func decodeBid(d *wire.Decoder) (wire.Value, error) {
	b := &Bid{
		Auction:  d.Uvarint(),
		Bidder:   d.Uvarint(),
		Price:    d.Uvarint(),
		Channel:  internChannel(d.StringRef()),
		URL:      d.StringRef(),
		DateTime: d.Varint(),
		Extra:    d.StringRef(),
	}
	return b, d.Err()
}

// bidChannels is the closed set of channel names the generator produces;
// interning them detaches the (long-lived, frequently-retained) Channel
// field from the wire buffer without a copy per record.
var bidChannels = [...]string{"channel-a", "channel-b", "channel-c", "channel-d"}

func internChannel(s string) string {
	for _, c := range bidChannels {
		if s == c {
			return c
		}
	}
	return s
}

// Q1Result is the output of query 1 (currency conversion).
type Q1Result struct {
	Auction  uint64
	Bidder   uint64
	PriceEur uint64
	DateTime int64
}

// TypeID implements wire.Value.
func (r *Q1Result) TypeID() uint16 { return typeQ1Result }

// MarshalWire implements wire.Value.
func (r *Q1Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Auction)
	e.Uvarint(r.Bidder)
	e.Uvarint(r.PriceEur)
	e.Varint(r.DateTime)
}

func decodeQ1Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q1Result{Auction: d.Uvarint(), Bidder: d.Uvarint(), PriceEur: d.Uvarint(), DateTime: d.Varint()}
	return r, d.Err()
}

// Q3Result is the output of query 3 (persons joined with their auctions).
type Q3Result struct {
	Name    string
	City    string
	State   string
	Auction uint64
}

// TypeID implements wire.Value.
func (r *Q3Result) TypeID() uint16 { return typeQ3Result }

// MarshalWire implements wire.Value.
func (r *Q3Result) MarshalWire(e *wire.Encoder) {
	e.String(r.Name)
	e.String(r.City)
	e.String(r.State)
	e.Uvarint(r.Auction)
}

func decodeQ3Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q3Result{Name: d.String(), City: d.String(), State: d.String(), Auction: d.Uvarint()}
	return r, d.Err()
}

// Q8Result is the output of query 8 (new persons with new auctions in the
// same window).
type Q8Result struct {
	Person  uint64
	Name    string
	Auction uint64
	Window  int64
}

// TypeID implements wire.Value.
func (r *Q8Result) TypeID() uint16 { return typeQ8Result }

// MarshalWire implements wire.Value.
func (r *Q8Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Person)
	e.String(r.Name)
	e.Uvarint(r.Auction)
	e.Varint(r.Window)
}

func decodeQ8Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q8Result{Person: d.Uvarint(), Name: d.String(), Auction: d.Uvarint(), Window: d.Varint()}
	return r, d.Err()
}

// Q12Result is the output of query 12 (running per-bidder bid counts in a
// processing-time window).
type Q12Result struct {
	Bidder uint64
	Count  uint64
	Window int64
}

// TypeID implements wire.Value.
func (r *Q12Result) TypeID() uint16 { return typeQ12Result }

// MarshalWire implements wire.Value.
func (r *Q12Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Bidder)
	e.Uvarint(r.Count)
	e.Varint(r.Window)
}

func decodeQ12Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q12Result{Bidder: d.Uvarint(), Count: d.Uvarint(), Window: d.Varint()}
	return r, d.Err()
}

func init() {
	wire.RegisterType(typePerson, decodePerson)
	wire.RegisterType(typeAuction, decodeAuction)
	wire.RegisterType(typeBid, decodeBid)
	wire.RegisterType(typeQ1Result, decodeQ1Result)
	wire.RegisterType(typeQ3Result, decodeQ3Result)
	wire.RegisterType(typeQ8Result, decodeQ8Result)
	wire.RegisterType(typeQ12Result, decodeQ12Result)
}
