// Event-time variant of Q12 — the extension that verifies the paper's
// claim (§VI) that "the type of the time window does not affect the
// checkpointing protocol's performance". Where q12 windows by processing
// time and evicts on timers, q12et assigns bids to tumbling event-time
// windows by Bid.DateTime and fires a window when the watermark passes its
// end. Window firing derives deterministic UIDs from the watermark, so a
// window re-fired after recovery deduplicates exactly.
package nexmark

import (
	"sort"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/wire"
)

// BidEventTime extracts the event time of a bid (its generation DateTime);
// used as the SourceSpec.EventTime hook of the event-time queries.
func BidEventTime(key uint64, v wire.Value) int64 { return v.(*Bid).DateTime }

// q12CountET counts bids per bidder in tumbling event-time windows; window
// results are emitted once, when the watermark passes the window end.
type q12CountET struct {
	win     int64
	windows map[int64]map[uint64]uint64 // window start -> bidder -> count
	// late counts bids dropped because their window already fired. With a
	// watermark lag covering the source out-of-orderness this stays 0 and
	// recovery is exact.
	late uint64
}

func newQ12CountET(win time.Duration) *q12CountET {
	return &q12CountET{win: win.Nanoseconds(), windows: make(map[int64]map[uint64]uint64)}
}

// OnEvent implements core.Operator.
func (c *q12CountET) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	ts := ev.EventNS
	start := ts - ts%c.win
	if start+c.win <= ctx.WatermarkNS() {
		c.late++ // the window already fired; dropping keeps results final
		return
	}
	w, ok := c.windows[start]
	if !ok {
		w = make(map[uint64]uint64)
		c.windows[start] = w
	}
	w[b.Bidder]++
}

// OnWatermark implements core.WatermarkHandler: fire every window whose end
// the watermark passed. Windows and bidders are emitted in sorted order so
// a re-fire after recovery regenerates identical emission sequences (and
// therefore identical UIDs).
func (c *q12CountET) OnWatermark(ctx core.Context, wm int64) {
	var due []int64
	for start := range c.windows {
		if start+c.win <= wm {
			due = append(due, start)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, start := range due {
		w := c.windows[start]
		bidders := make([]uint64, 0, len(w))
		for b := range w {
			bidders = append(bidders, b)
		}
		sort.Slice(bidders, func(i, j int) bool { return bidders[i] < bidders[j] })
		for _, b := range bidders {
			ctx.Emit(b, &Q12Result{Bidder: b, Count: w[b], Window: start})
		}
		delete(c.windows, start)
	}
}

// Snapshot implements core.Operator.
func (c *q12CountET) Snapshot(enc *wire.Encoder) {
	enc.Varint(c.win)
	enc.Uvarint(c.late)
	enc.Uvarint(uint64(len(c.windows)))
	for start, w := range c.windows {
		enc.Varint(start)
		enc.Uvarint(uint64(len(w)))
		for bidder, count := range w {
			enc.Uvarint(bidder)
			enc.Uvarint(count)
		}
	}
}

// Restore implements core.Operator.
func (c *q12CountET) Restore(dec *wire.Decoder) error {
	c.win = dec.Varint()
	c.late = dec.Uvarint()
	n := int(dec.Uvarint())
	c.windows = make(map[int64]map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		start := dec.Varint()
		m := int(dec.Uvarint())
		w := make(map[uint64]uint64, m)
		for j := 0; j < m; j++ {
			bidder := dec.Uvarint()
			w[bidder] = dec.Uvarint()
		}
		c.windows[start] = w
	}
	return dec.Err()
}

// buildQ12ET is the event-time twin of buildQ12: identical topology, an
// event-time extractor on the source, and watermark-fired windows.
func buildQ12ET(win time.Duration) *core.JobSpec {
	return &core.JobSpec{
		Name: "q12et",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids, EventTime: BidEventTime}},
			{Name: "keyBy", New: func(int) core.Operator { return bidKeyBy{} }},
			{Name: "count", New: func(int) core.Operator { return newQ12CountET(win) }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Hash},
			{From: 2, To: 3, Part: core.Forward},
		},
	}
}
