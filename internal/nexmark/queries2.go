package nexmark

import (
	"time"

	"checkmate/internal/core"
	"checkmate/internal/window"
	"checkmate/internal/wire"
)

// ---- Q2: selection (stateless filter, no shuffling) ----

// q2SelectDivisor selects auctions whose id is a multiple of it, the classic
// NexMark Q2 predicate ("auction = 1007 OR auction = 1020 OR ..." modeled as
// a modulus so the selectivity is rate-independent).
const q2SelectDivisor = 123

// q2Filter passes bids on the selected auctions.
type q2Filter struct{}

// OnEvent implements core.Operator.
func (q2Filter) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	if b.Auction%q2SelectDivisor == 0 {
		ctx.Emit(ev.Key, &Q2Result{Auction: b.Auction, Price: b.Price})
	}
}

// Snapshot implements core.Operator (stateless).
func (q2Filter) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (q2Filter) Restore(dec *wire.Decoder) error { return nil }

func buildQ2() *core.JobSpec {
	return &core.JobSpec{
		Name: "q2",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "filter", New: func(int) core.Operator { return q2Filter{} }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Forward},
		},
	}
}

// ---- Q5: hot items (sliding-window count + global max) ----

// bidKeyByAuction rekeys bids by auction id (the shuffle into the counting
// stage).
type bidKeyByAuction struct{}

// OnEvent implements core.Operator.
func (bidKeyByAuction) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	ctx.Emit(b.Auction, b)
}

// Snapshot implements core.Operator.
func (bidKeyByAuction) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (bidKeyByAuction) Restore(dec *wire.Decoder) error { return nil }

// q5Count counts bids per auction over sliding processing-time windows and
// emits each window's per-auction counts when the window closes. Partial
// counts are keyed by window start so one max instance sees a whole window.
type q5Count struct {
	win    window.Sliding
	counts *window.Counts
}

func newQ5Count(size, slide time.Duration) *q5Count {
	w := window.Sliding{Size: size, Slide: slide}
	if err := w.Validate(); err != nil {
		panic("nexmark: q5: " + err.Error())
	}
	return &q5Count{win: w, counts: window.NewCounts()}
}

// OnEvent implements core.Operator.
func (c *q5Count) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	now := ctx.NowNS()
	for _, start := range c.win.Assign(nil, now) {
		c.counts.Add(start, b.Auction, 1)
	}
	// Fire when the oldest live window closes.
	ctx.SetTimer(now - now%int64(c.win.Slide) + int64(c.win.Slide))
}

// OnTimer implements core.TimerHandler: flush and drop every closed window.
func (c *q5Count) OnTimer(ctx core.Context, nowNS int64) {
	for _, start := range c.counts.Windows() {
		if c.win.End(start) > nowNS {
			break
		}
		for _, e := range c.counts.WindowEntries(start) {
			ctx.Emit(uint64(start), &Q5Partial{Auction: e.Key, Count: e.Count, Window: start})
		}
	}
	c.counts.Expire(nowNS - int64(c.win.Size))
	if c.counts.Len() > 0 {
		ctx.SetTimer(nowNS - nowNS%int64(c.win.Slide) + int64(c.win.Slide))
	}
}

// Snapshot implements core.Operator.
func (c *q5Count) Snapshot(enc *wire.Encoder) {
	enc.Varint(int64(c.win.Size))
	enc.Varint(int64(c.win.Slide))
	c.counts.Snapshot(enc)
}

// Restore implements core.Operator.
func (c *q5Count) Restore(dec *wire.Decoder) error {
	c.win.Size = time.Duration(dec.Varint())
	c.win.Slide = time.Duration(dec.Varint())
	if err := dec.Err(); err != nil {
		return err
	}
	return c.counts.Restore(dec)
}

// q5Max tracks the hottest auction per window across the partial counts of
// all counting instances (running variant: emits whenever the leader
// improves) and expires settled windows.
type q5Max struct {
	slide int64
	best  map[int64]window.Entry // window start -> current leader
}

func newQ5Max(slide time.Duration) *q5Max {
	return &q5Max{slide: slide.Nanoseconds(), best: make(map[int64]window.Entry)}
}

// OnEvent implements core.Operator.
func (m *q5Max) OnEvent(ctx core.Context, ev core.Event) {
	p := ev.Value.(*Q5Partial)
	cur, ok := m.best[p.Window]
	if !ok || p.Count > cur.Count || (p.Count == cur.Count && p.Auction < cur.Key) {
		m.best[p.Window] = window.Entry{Key: p.Auction, Count: p.Count}
		ctx.Emit(p.Auction, &Q5Result{Auction: p.Auction, Count: p.Count, Window: p.Window})
	}
	// Windows older than a few slides have settled; garbage-collect them.
	ctx.SetTimer(ctx.NowNS() + 4*m.slide)
}

// OnTimer implements core.TimerHandler.
func (m *q5Max) OnTimer(ctx core.Context, nowNS int64) {
	for start := range m.best {
		if start < nowNS-8*m.slide {
			delete(m.best, start)
		}
	}
	if len(m.best) > 0 {
		ctx.SetTimer(nowNS + 4*m.slide)
	}
}

// Snapshot implements core.Operator.
func (m *q5Max) Snapshot(enc *wire.Encoder) {
	enc.Varint(m.slide)
	enc.Uvarint(uint64(len(m.best)))
	for start, e := range m.best {
		enc.Varint(start)
		enc.Uvarint(e.Key)
		enc.Uvarint(e.Count)
	}
}

// Restore implements core.Operator.
func (m *q5Max) Restore(dec *wire.Decoder) error {
	m.slide = dec.Varint()
	n := int(dec.Uvarint())
	if dec.Err() != nil {
		return dec.Err()
	}
	m.best = make(map[int64]window.Entry, n)
	for i := 0; i < n; i++ {
		start := dec.Varint()
		key := dec.Uvarint()
		count := dec.Uvarint()
		m.best[start] = window.Entry{Key: key, Count: count}
	}
	return dec.Err()
}

func buildQ5(size, slide time.Duration) *core.JobSpec {
	return &core.JobSpec{
		Name: "q5",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "keyBy", New: func(int) core.Operator { return bidKeyByAuction{} }},
			{Name: "count", New: func(int) core.Operator { return newQ5Count(size, slide) }},
			{Name: "max", New: func(int) core.Operator { return newQ5Max(slide) }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Hash},
			{From: 2, To: 3, Part: core.Hash},
			{From: 3, To: 4, Part: core.Forward},
		},
	}
}
