// Queries 4 and 7 of the NexMark suite — workload-library extensions
// beyond the four queries the paper evaluates.
//
// Q4 (average closing price per category) exercises a two-stage keyed
// shuffle: bids join auctions by auction id to maintain the current
// winning bid, and a second stage averages winning bids per category. The
// streaming adaptation is incremental ("running"), like the paper's
// running windows: every change of a winning bid updates the category
// average immediately.
//
// Q7 (highest bid per window) exercises a global aggregation topology: a
// parallel per-instance pre-maximum feeds a parallelism-1 global maximum —
// the classic combiner pattern for non-keyed aggregates.
package nexmark

import (
	"time"

	"checkmate/internal/core"
	"checkmate/internal/wire"
)

// Wire type IDs of the Q4/Q7 records (continuing the 10..49 block).
const (
	typeQ4MaxUpdate = 26
	typeQ4Result    = 27
	typeQ7Partial   = 28
	typeQ7Result    = 29
)

// Q4MaxUpdate reports a change of the winning (maximum) bid of one auction
// to the category-averaging stage.
type Q4MaxUpdate struct {
	Category uint64
	Old      uint64 // previous winning price (0 when First)
	New      uint64 // new winning price
	First    bool   // first bid of this auction
}

// TypeID implements wire.Value.
func (r *Q4MaxUpdate) TypeID() uint16 { return typeQ4MaxUpdate }

// MarshalWire implements wire.Value.
func (r *Q4MaxUpdate) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Category)
	e.Uvarint(r.Old)
	e.Uvarint(r.New)
	e.Bool(r.First)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q4MaxUpdate) DecodeWireInto(d *wire.Decoder) error {
	r.Category = d.Uvarint()
	r.Old = d.Uvarint()
	r.New = d.Uvarint()
	r.First = d.Bool()
	return d.Err()
}

func decodeQ4MaxUpdate(d *wire.Decoder) (wire.Value, error) {
	r := &Q4MaxUpdate{}
	return r, r.DecodeWireInto(d)
}

// Q4Result is the output of query 4: the running average winning bid of
// one category.
type Q4Result struct {
	Category uint64
	Avg      uint64
}

// TypeID implements wire.Value.
func (r *Q4Result) TypeID() uint16 { return typeQ4Result }

// MarshalWire implements wire.Value.
func (r *Q4Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Category)
	e.Uvarint(r.Avg)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q4Result) DecodeWireInto(d *wire.Decoder) error {
	r.Category = d.Uvarint()
	r.Avg = d.Uvarint()
	return d.Err()
}

func decodeQ4Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q4Result{}
	return r, r.DecodeWireInto(d)
}

// Q7Partial is one pre-aggregation instance's window maximum.
type Q7Partial struct {
	Window int64
	Price  uint64
	Bidder uint64
}

// TypeID implements wire.Value.
func (r *Q7Partial) TypeID() uint16 { return typeQ7Partial }

// MarshalWire implements wire.Value.
func (r *Q7Partial) MarshalWire(e *wire.Encoder) {
	e.Varint(r.Window)
	e.Uvarint(r.Price)
	e.Uvarint(r.Bidder)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q7Partial) DecodeWireInto(d *wire.Decoder) error {
	r.Window = d.Varint()
	r.Price = d.Uvarint()
	r.Bidder = d.Uvarint()
	return d.Err()
}

func decodeQ7Partial(d *wire.Decoder) (wire.Value, error) {
	r := &Q7Partial{}
	return r, r.DecodeWireInto(d)
}

// Q7Result is the output of query 7: the highest bid of one window
// (running variant — re-emitted whenever the leader improves).
type Q7Result struct {
	Window int64
	Price  uint64
	Bidder uint64
}

// TypeID implements wire.Value.
func (r *Q7Result) TypeID() uint16 { return typeQ7Result }

// MarshalWire implements wire.Value.
func (r *Q7Result) MarshalWire(e *wire.Encoder) {
	e.Varint(r.Window)
	e.Uvarint(r.Price)
	e.Uvarint(r.Bidder)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q7Result) DecodeWireInto(d *wire.Decoder) error {
	r.Window = d.Varint()
	r.Price = d.Uvarint()
	r.Bidder = d.Uvarint()
	return d.Err()
}

func decodeQ7Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q7Result{}
	return r, r.DecodeWireInto(d)
}

func init() {
	wire.RegisterType(typeQ4MaxUpdate, decodeQ4MaxUpdate)
	wire.RegisterType(typeQ4Result, decodeQ4Result)
	wire.RegisterType(typeQ7Partial, decodeQ7Partial)
	wire.RegisterType(typeQ7Result, decodeQ7Result)
}

// ---- Q4: average winning bid per category ----

// auctionByID rekeys auctions by auction id (topic records are keyed by
// seller).
type auctionByID struct{}

// OnEvent implements core.Operator.
func (auctionByID) OnEvent(ctx core.Context, ev core.Event) {
	a := ev.Value.(*Auction)
	ctx.Emit(a.ID, a)
}

// Snapshot implements core.Operator.
func (auctionByID) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (auctionByID) Restore(dec *wire.Decoder) error { return nil }

// q4MaxBid joins bids with auctions by auction id and tracks the winning
// bid per auction. Bids may arrive before their auction; the running
// maximum is buffered until the auction's category is known.
type q4MaxBid struct {
	category map[uint64]uint64 // auction id -> category
	winning  map[uint64]uint64 // auction id -> current winning price
	pending  map[uint64]uint64 // auction id -> max price seen before the auction
}

func newQ4MaxBid() *q4MaxBid {
	return &q4MaxBid{
		category: make(map[uint64]uint64),
		winning:  make(map[uint64]uint64),
		pending:  make(map[uint64]uint64),
	}
}

// OnEvent implements core.Operator.
func (q *q4MaxBid) OnEvent(ctx core.Context, ev core.Event) {
	switch v := ev.Value.(type) {
	case *Auction:
		if _, ok := q.category[v.ID]; ok {
			return // duplicate auction id: first one wins
		}
		q.category[v.ID] = v.Category
		if max, ok := q.pending[v.ID]; ok {
			delete(q.pending, v.ID)
			q.winning[v.ID] = max
			ctx.Emit(v.Category, &Q4MaxUpdate{Category: v.Category, New: max, First: true})
		}
	case *Bid:
		cat, haveAuction := q.category[v.Auction]
		if !haveAuction {
			if v.Price > q.pending[v.Auction] {
				q.pending[v.Auction] = v.Price
			}
			return
		}
		old := q.winning[v.Auction]
		if v.Price <= old {
			return
		}
		q.winning[v.Auction] = v.Price
		ctx.Emit(cat, &Q4MaxUpdate{Category: cat, Old: old, New: v.Price, First: old == 0})
	}
}

// Snapshot implements core.Operator.
func (q *q4MaxBid) Snapshot(enc *wire.Encoder) {
	snapshotU64Map(enc, q.category)
	snapshotU64Map(enc, q.winning)
	snapshotU64Map(enc, q.pending)
}

// Restore implements core.Operator.
func (q *q4MaxBid) Restore(dec *wire.Decoder) error {
	q.category = restoreU64Map(dec)
	q.winning = restoreU64Map(dec)
	q.pending = restoreU64Map(dec)
	return dec.Err()
}

func snapshotU64Map(enc *wire.Encoder, m map[uint64]uint64) {
	enc.Uvarint(uint64(len(m)))
	for k, v := range m {
		enc.Uvarint(k)
		enc.Uvarint(v)
	}
}

func restoreU64Map(dec *wire.Decoder) map[uint64]uint64 {
	n := int(dec.Uvarint())
	m := make(map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		k := dec.Uvarint()
		m[k] = dec.Uvarint()
	}
	return m
}

// q4Avg maintains the running average winning bid per category.
type q4Avg struct {
	sum   map[uint64]uint64
	count map[uint64]uint64
}

func newQ4Avg() *q4Avg {
	return &q4Avg{sum: make(map[uint64]uint64), count: make(map[uint64]uint64)}
}

// OnEvent implements core.Operator.
func (q *q4Avg) OnEvent(ctx core.Context, ev core.Event) {
	u := ev.Value.(*Q4MaxUpdate)
	if u.First {
		q.count[u.Category]++
	}
	q.sum[u.Category] += u.New - u.Old
	ctx.Emit(u.Category, &Q4Result{Category: u.Category, Avg: q.sum[u.Category] / q.count[u.Category]})
}

// Snapshot implements core.Operator.
func (q *q4Avg) Snapshot(enc *wire.Encoder) {
	snapshotU64Map(enc, q.sum)
	snapshotU64Map(enc, q.count)
}

// Restore implements core.Operator.
func (q *q4Avg) Restore(dec *wire.Decoder) error {
	q.sum = restoreU64Map(dec)
	q.count = restoreU64Map(dec)
	return dec.Err()
}

func buildQ4() *core.JobSpec {
	return &core.JobSpec{
		Name: "q4",
		Ops: []core.OpSpec{
			{Name: "auctions", Source: &core.SourceSpec{Topic: TopicAuctions}},
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "keyA", New: func(int) core.Operator { return auctionByID{} }},
			{Name: "keyB", New: func(int) core.Operator { return bidByAuction{} }},
			{Name: "maxbid", New: func(int) core.Operator { return newQ4MaxBid() }},
			{Name: "avg", New: func(int) core.Operator { return newQ4Avg() }},
			{Name: "sink", Sink: true, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 2, Part: core.Forward},
			{From: 1, To: 3, Part: core.Forward},
			{From: 2, To: 4, Part: core.Hash},
			{From: 3, To: 4, Part: core.Hash},
			{From: 4, To: 5, Part: core.Hash},
			{From: 5, To: 6, Part: core.Forward},
		},
	}
}

// bidByAuction rekeys bids by auction id.
type bidByAuction struct{}

// OnEvent implements core.Operator.
func (bidByAuction) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	ctx.Emit(b.Auction, b)
}

// Snapshot implements core.Operator.
func (bidByAuction) Snapshot(enc *wire.Encoder) {}

// Restore implements core.Operator.
func (bidByAuction) Restore(dec *wire.Decoder) error { return nil }

// ---- Q7: highest bid per processing-time tumbling window ----

// q7Local is the per-instance pre-aggregation: the running window maximum,
// forwarded to the global stage whenever it improves.
type q7Local struct {
	win    int64
	best   map[int64]uint64 // window start -> best local price
	bidder map[int64]uint64
}

func newQ7Local(win time.Duration) *q7Local {
	return &q7Local{win: win.Nanoseconds(), best: make(map[int64]uint64), bidder: make(map[int64]uint64)}
}

// OnEvent implements core.Operator.
func (q *q7Local) OnEvent(ctx core.Context, ev core.Event) {
	b := ev.Value.(*Bid)
	now := ctx.NowNS()
	start := now - now%q.win
	if b.Price <= q.best[start] {
		return
	}
	q.best[start] = b.Price
	q.bidder[start] = b.Bidder
	// Constant key: all partials of one window meet at one global instance.
	ctx.Emit(0, &Q7Partial{Window: start, Price: b.Price, Bidder: b.Bidder})
	ctx.SetTimer(start + 2*q.win)
}

// OnTimer implements core.TimerHandler: evict closed windows.
func (q *q7Local) OnTimer(ctx core.Context, nowNS int64) {
	cur := nowNS - nowNS%q.win
	for start := range q.best {
		if start < cur {
			delete(q.best, start)
			delete(q.bidder, start)
		}
	}
	if len(q.best) > 0 {
		ctx.SetTimer(cur + 2*q.win)
	}
}

// Snapshot implements core.Operator.
func (q *q7Local) Snapshot(enc *wire.Encoder) {
	enc.Varint(q.win)
	enc.Uvarint(uint64(len(q.best)))
	for start, price := range q.best {
		enc.Varint(start)
		enc.Uvarint(price)
		enc.Uvarint(q.bidder[start])
	}
}

// Restore implements core.Operator.
func (q *q7Local) Restore(dec *wire.Decoder) error {
	q.win = dec.Varint()
	n := int(dec.Uvarint())
	q.best = make(map[int64]uint64, n)
	q.bidder = make(map[int64]uint64, n)
	for i := 0; i < n; i++ {
		start := dec.Varint()
		q.best[start] = dec.Uvarint()
		q.bidder[start] = dec.Uvarint()
	}
	return dec.Err()
}

// q7Global combines the partial maxima into the global window maximum
// (parallelism 1).
type q7Global struct {
	win    int64
	best   map[int64]uint64
	bidder map[int64]uint64
}

func newQ7Global(win time.Duration) *q7Global {
	return &q7Global{win: win.Nanoseconds(), best: make(map[int64]uint64), bidder: make(map[int64]uint64)}
}

// OnEvent implements core.Operator.
func (q *q7Global) OnEvent(ctx core.Context, ev core.Event) {
	p := ev.Value.(*Q7Partial)
	if p.Price <= q.best[p.Window] {
		return
	}
	q.best[p.Window] = p.Price
	q.bidder[p.Window] = p.Bidder
	ctx.Emit(uint64(p.Window), &Q7Result{Window: p.Window, Price: p.Price, Bidder: p.Bidder})
	ctx.SetTimer(p.Window + 2*q.win)
}

// OnTimer implements core.TimerHandler.
func (q *q7Global) OnTimer(ctx core.Context, nowNS int64) {
	cur := nowNS - nowNS%q.win
	for start := range q.best {
		if start < cur {
			delete(q.best, start)
			delete(q.bidder, start)
		}
	}
	if len(q.best) > 0 {
		ctx.SetTimer(cur + 2*q.win)
	}
}

// Snapshot implements core.Operator.
func (q *q7Global) Snapshot(enc *wire.Encoder) {
	enc.Varint(q.win)
	enc.Uvarint(uint64(len(q.best)))
	for start, price := range q.best {
		enc.Varint(start)
		enc.Uvarint(price)
		enc.Uvarint(q.bidder[start])
	}
}

// Restore implements core.Operator.
func (q *q7Global) Restore(dec *wire.Decoder) error {
	q.win = dec.Varint()
	n := int(dec.Uvarint())
	q.best = make(map[int64]uint64, n)
	q.bidder = make(map[int64]uint64, n)
	for i := 0; i < n; i++ {
		start := dec.Varint()
		q.best[start] = dec.Uvarint()
		q.bidder[start] = dec.Uvarint()
	}
	return dec.Err()
}

func buildQ7(win time.Duration) *core.JobSpec {
	return &core.JobSpec{
		Name: "q7",
		Ops: []core.OpSpec{
			{Name: "bids", Source: &core.SourceSpec{Topic: TopicBids}},
			{Name: "localMax", New: func(int) core.Operator { return newQ7Local(win) }},
			{Name: "globalMax", Parallelism: 1, New: func(int) core.Operator { return newQ7Global(win) }},
			{Name: "sink", Sink: true, Parallelism: 1, New: func(int) core.Operator { return NewCountSink() }},
		},
		Edges: []core.EdgeSpec{
			{From: 0, To: 1, Part: core.Forward},
			{From: 1, To: 2, Part: core.Hash},
			{From: 2, To: 3, Part: core.Forward},
		},
	}
}
