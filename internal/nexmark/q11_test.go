package nexmark

import (
	"testing"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/wire"
)

func TestQ11EventRoundTrip(t *testing.T) {
	enc := wire.NewEncoder(nil)
	(&Q11Result{Bidder: 3, Count: 5, Start: 10, End: 40}).MarshalWire(enc)
	v, err := decodeQ11Result(wire.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r := v.(*Q11Result)
	if r.Bidder != 3 || r.Count != 5 || r.Start != 10 || r.End != 40 {
		t.Fatalf("round trip = %+v", r)
	}
}

func TestQ11SessionCounting(t *testing.T) {
	q := newQ11Session(10 * time.Nanosecond)
	ctx := &fakeCtx{now: 100}
	q.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 1}})
	ctx.now = 105
	q.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 1}}) // same session
	ctx.now = 200
	q.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 1}}) // new session
	if len(ctx.emitted) != 0 {
		t.Fatal("emitted before sessions closed")
	}
	// Sweep at 150: the first session (ends 115) closed; the second is open.
	q.OnTimer(ctx, 150)
	if len(ctx.emitted) != 1 {
		t.Fatalf("emitted %d results, want 1", len(ctx.emitted))
	}
	r := ctx.emitted[0].v.(*Q11Result)
	if r.Bidder != 1 || r.Count != 2 || r.Start != 100 || r.End != 115 {
		t.Fatalf("session result = %+v", r)
	}
	if ctx.emitted[0].key != 1 {
		t.Fatalf("result keyed by %d, want bidder", ctx.emitted[0].key)
	}
	// The open session re-arms the sweep timer.
	if ctx.timer != 150+10 {
		t.Fatalf("timer = %d, want 160", ctx.timer)
	}
}

func TestQ11SnapshotRestore(t *testing.T) {
	q := newQ11Session(10 * time.Nanosecond)
	ctx := &fakeCtx{now: 100}
	q.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 4}})
	enc := wire.NewEncoder(nil)
	q.Snapshot(enc)
	r := newQ11Session(time.Nanosecond)
	if err := r.Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r.gap != q.gap {
		t.Fatalf("restored gap = %v", r.gap)
	}
	// Sweeping the restored operator emits the carried-over session.
	ctx2 := &fakeCtx{now: 500}
	r.OnTimer(ctx2, 500)
	if len(ctx2.emitted) != 1 || ctx2.emitted[0].v.(*Q11Result).Bidder != 4 {
		t.Fatalf("restored sessions lost: %+v", ctx2.emitted)
	}
}

func TestBuildQ11(t *testing.T) {
	job, err := Build("q11", QueryConfig{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Validate(4); err != nil {
		t.Fatal(err)
	}
	if got := TopicsFor("q11"); len(got) != 1 || got[0] != TopicBids {
		t.Fatalf("topics = %v", got)
	}
}
