package nexmark

import (
	"checkmate/internal/wire"
)

// Wire type IDs of the Q2/Q5 records (continuing the 10..49 block).
const (
	typeQ2Result  = 17
	typeQ5Partial = 18
	typeQ5Result  = 19
)

// Q2Result is the output of query 2 (selection of specific auctions).
type Q2Result struct {
	Auction uint64
	Price   uint64
}

// TypeID implements wire.Value.
func (r *Q2Result) TypeID() uint16 { return typeQ2Result }

// MarshalWire implements wire.Value.
func (r *Q2Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Auction)
	e.Uvarint(r.Price)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q2Result) DecodeWireInto(d *wire.Decoder) error {
	r.Auction = d.Uvarint()
	r.Price = d.Uvarint()
	return d.Err()
}

func decodeQ2Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q2Result{}
	return r, r.DecodeWireInto(d)
}

// Q5Partial is one counting instance's per-window bid count for one auction,
// sent to the max stage of query 5.
type Q5Partial struct {
	Auction uint64
	Count   uint64
	Window  int64
}

// TypeID implements wire.Value.
func (r *Q5Partial) TypeID() uint16 { return typeQ5Partial }

// MarshalWire implements wire.Value.
func (r *Q5Partial) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Auction)
	e.Uvarint(r.Count)
	e.Varint(r.Window)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q5Partial) DecodeWireInto(d *wire.Decoder) error {
	r.Auction = d.Uvarint()
	r.Count = d.Uvarint()
	r.Window = d.Varint()
	return d.Err()
}

func decodeQ5Partial(d *wire.Decoder) (wire.Value, error) {
	r := &Q5Partial{}
	return r, r.DecodeWireInto(d)
}

// Q5Result is the output of query 5: the hottest auction of one sliding
// window (running variant: a new record is emitted whenever the leader
// changes).
type Q5Result struct {
	Auction uint64
	Count   uint64
	Window  int64
}

// TypeID implements wire.Value.
func (r *Q5Result) TypeID() uint16 { return typeQ5Result }

// MarshalWire implements wire.Value.
func (r *Q5Result) MarshalWire(e *wire.Encoder) {
	e.Uvarint(r.Auction)
	e.Uvarint(r.Count)
	e.Varint(r.Window)
}

// DecodeWireInto implements wire.Reusable.
func (r *Q5Result) DecodeWireInto(d *wire.Decoder) error {
	r.Auction = d.Uvarint()
	r.Count = d.Uvarint()
	r.Window = d.Varint()
	return d.Err()
}

func decodeQ5Result(d *wire.Decoder) (wire.Value, error) {
	r := &Q5Result{}
	return r, r.DecodeWireInto(d)
}

func init() {
	wire.RegisterType(typeQ2Result, decodeQ2Result)
	wire.RegisterType(typeQ5Partial, decodeQ5Partial)
	wire.RegisterType(typeQ5Result, decodeQ5Result)
}
