package nexmark

import (
	"testing"
	"time"

	"checkmate/internal/core"
	"checkmate/internal/mq"
	"checkmate/internal/statestore"
	"checkmate/internal/wire"
)

func TestGenerateMix(t *testing.T) {
	broker := mq.NewBroker()
	counts, err := Generate(broker, GenConfig{Rate: 5000, Duration: time.Second, Partitions: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := counts[TopicPersons] + counts[TopicAuctions] + counts[TopicBids]
	if total != 5000 {
		t.Fatalf("total = %d", total)
	}
	// Standard NexMark mix: 1:3:46.
	if counts[TopicPersons] != 100 || counts[TopicAuctions] != 300 || counts[TopicBids] != 4600 {
		t.Fatalf("mix = %v", counts)
	}
	topic, _ := broker.Topic(TopicBids)
	if topic.TotalLen() != 4600 {
		t.Fatalf("bid topic len = %d", topic.TotalLen())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	read := func() []mq.Record {
		b := mq.NewBroker()
		if _, err := Generate(b, GenConfig{Rate: 1000, Duration: time.Second, Partitions: 1, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		topic, _ := b.Topic(TopicBids)
		return topic.Partition(0).ReadBatch(nil, 0, 100)
	}
	a, b := read(), read()
	for i := range a {
		ba, bb := a[i].Value.(*Bid), b[i].Value.(*Bid)
		if *ba != *bb {
			t.Fatalf("record %d differs: %+v vs %+v", i, ba, bb)
		}
	}
}

func TestGenerateSelectedTopics(t *testing.T) {
	broker := mq.NewBroker()
	counts, err := Generate(broker, GenConfig{Rate: 1000, Duration: time.Second, Partitions: 1, Seed: 1, Topics: []string{TopicBids}})
	if err != nil {
		t.Fatal(err)
	}
	if counts[TopicPersons] != 0 || counts[TopicBids] == 0 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := broker.Topic(TopicPersons); err == nil {
		t.Fatal("persons topic should not exist")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(mq.NewBroker(), GenConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestHotRatioSkew(t *testing.T) {
	broker := mq.NewBroker()
	if _, err := Generate(broker, GenConfig{Rate: 10000, Duration: time.Second, Partitions: 1, Seed: 3, HotRatio: 0.3, Topics: []string{TopicBids}}); err != nil {
		t.Fatal(err)
	}
	topic, _ := broker.Topic(TopicBids)
	recs := topic.Partition(0).ReadBatch(nil, 0, 1<<20)
	hot := 0
	for _, r := range recs {
		if r.Value.(*Bid).Auction == hotAuctionID {
			hot++
		}
	}
	ratio := float64(hot) / float64(len(recs))
	if ratio < 0.25 || ratio > 0.36 {
		t.Fatalf("hot ratio = %v, want ~0.30", ratio)
	}
}

func TestEventRoundTrips(t *testing.T) {
	vals := []wire.Value{
		&Person{ID: 1, Name: "n", Email: "e", CreditCard: "c", City: "x", State: "OR", DateTime: 5, Extra: "z"},
		&Auction{ID: 2, ItemName: "i", Description: "d", InitialBid: 3, Reserve: 4, DateTime: 5, Expires: 6, Seller: 7, Category: 10, Extra: "y"},
		&Bid{Auction: 1, Bidder: 2, Price: 3, Channel: "ch", URL: "u", DateTime: 4, Extra: "x"},
		&Q1Result{Auction: 1, Bidder: 2, PriceEur: 3, DateTime: 4},
		&Q3Result{Name: "n", City: "c", State: "OR", Auction: 9},
		&Q8Result{Person: 1, Name: "n", Auction: 2, Window: 3},
		&Q12Result{Bidder: 1, Count: 2, Window: 3},
	}
	for _, v := range vals {
		enc := wire.NewEncoder(nil)
		wire.EncodeValue(enc, v)
		got, err := wire.DecodeValue(wire.NewDecoder(enc.Bytes()))
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		if got.TypeID() != v.TypeID() {
			t.Fatalf("%T: type id %d != %d", v, got.TypeID(), v.TypeID())
		}
	}
}

func TestBuildQueries(t *testing.T) {
	for _, q := range Queries {
		job, err := Build(q, QueryConfig{})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, err := job.Validate(4); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if job.IsCyclic() {
			t.Fatalf("%s should be acyclic", q)
		}
		if len(TopicsFor(q)) == 0 {
			t.Fatalf("%s: no topics", q)
		}
	}
	if _, err := Build("q99", QueryConfig{}); err == nil {
		t.Fatal("unknown query should fail")
	}
	if TopicsFor("q99") != nil {
		t.Fatal("unknown query topics should be nil")
	}
}

// fakeCtx is a minimal Context for direct operator unit tests.
type fakeCtx struct {
	now     int64
	emitted []struct {
		edge int
		key  uint64
		v    wire.Value
	}
	timer int64
	wm    int64
	kv    *statestore.Store
}

func (f *fakeCtx) Emit(key uint64, v wire.Value) { f.EmitTo(0, key, v) }
func (f *fakeCtx) EmitTo(edge int, key uint64, v wire.Value) {
	f.emitted = append(f.emitted, struct {
		edge int
		key  uint64
		v    wire.Value
	}{edge, key, v})
}
func (f *fakeCtx) Index() int         { return 0 }
func (f *fakeCtx) Parallelism() int   { return 1 }
func (f *fakeCtx) NowNS() int64       { return f.now }
func (f *fakeCtx) SetTimer(at int64)  { f.timer = at }
func (f *fakeCtx) WatermarkNS() int64 { return f.wm }
func (f *fakeCtx) KeyedState() *statestore.Store {
	if f.kv == nil {
		f.kv = statestore.New()
	}
	return f.kv
}

func TestQ1MapConversion(t *testing.T) {
	ctx := &fakeCtx{}
	(&q1Map{}).OnEvent(ctx, core.Event{Key: 5, Value: &Bid{Auction: 5, Bidder: 2, Price: 1000}})
	if len(ctx.emitted) != 1 {
		t.Fatal("no output")
	}
	r := ctx.emitted[0].v.(*Q1Result)
	if r.PriceEur != 908 {
		t.Fatalf("price = %d, want 908", r.PriceEur)
	}
}

func TestPersonFilter(t *testing.T) {
	ctx := &fakeCtx{}
	personFilter{}.OnEvent(ctx, core.Event{Value: &Person{ID: 1, State: "OR"}})
	personFilter{}.OnEvent(ctx, core.Event{Value: &Person{ID: 2, State: "NY"}})
	if len(ctx.emitted) != 1 || ctx.emitted[0].key != 1 {
		t.Fatalf("emitted = %+v", ctx.emitted)
	}
}

func TestAuctionFilter(t *testing.T) {
	ctx := &fakeCtx{}
	auctionFilter{}.OnEvent(ctx, core.Event{Value: &Auction{ID: 1, Seller: 9, Category: 10}})
	auctionFilter{}.OnEvent(ctx, core.Event{Value: &Auction{ID: 2, Seller: 9, Category: 11}})
	if len(ctx.emitted) != 1 || ctx.emitted[0].key != 9 {
		t.Fatalf("emitted = %+v", ctx.emitted)
	}
}

func TestQ3JoinBothOrders(t *testing.T) {
	// Person first, then auction.
	j := newQ3Join()
	ctx := &fakeCtx{}
	j.OnEvent(ctx, core.Event{Value: &Person{ID: 1, Name: "a", State: "OR"}})
	j.OnEvent(ctx, core.Event{Value: &Auction{ID: 10, Seller: 1, Category: 10}})
	if len(ctx.emitted) != 1 || ctx.emitted[0].v.(*Q3Result).Auction != 10 {
		t.Fatalf("person-first join = %+v", ctx.emitted)
	}
	// Auction first (buffered), then person.
	j2 := newQ3Join()
	ctx2 := &fakeCtx{}
	j2.OnEvent(ctx2, core.Event{Value: &Auction{ID: 11, Seller: 2, Category: 10}})
	if len(ctx2.emitted) != 0 {
		t.Fatal("auction emitted before person arrived")
	}
	j2.OnEvent(ctx2, core.Event{Value: &Person{ID: 2, Name: "b", State: "CA"}})
	if len(ctx2.emitted) != 1 || ctx2.emitted[0].v.(*Q3Result).Auction != 11 {
		t.Fatalf("auction-first join = %+v", ctx2.emitted)
	}
}

func TestQ3JoinSnapshotRestore(t *testing.T) {
	j := newQ3Join()
	ctx := &fakeCtx{}
	j.OnEvent(ctx, core.Event{Value: &Person{ID: 1, Name: "a", State: "OR", City: "P"}})
	j.OnEvent(ctx, core.Event{Value: &Auction{ID: 11, Seller: 2, Category: 10}})
	// The join state lives in the keyed backend: snapshot and restore it
	// the way the engine does.
	enc := wire.NewEncoder(nil)
	ctx.KeyedState().SnapshotFull(enc)
	j2 := newQ3Join()
	ctx2 := &fakeCtx{}
	if err := ctx2.KeyedState().Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Restored state: auction 11 still pending for person 2.
	j2.OnEvent(ctx2, core.Event{Value: &Person{ID: 2, Name: "b", State: "ID"}})
	if len(ctx2.emitted) != 1 || ctx2.emitted[0].v.(*Q3Result).Auction != 11 {
		t.Fatalf("restored join lost pending auction: %+v", ctx2.emitted)
	}
	// Restored person 1 must join new auctions.
	j2.OnEvent(ctx2, core.Event{Value: &Auction{ID: 12, Seller: 1, Category: 10}})
	if len(ctx2.emitted) != 2 {
		t.Fatalf("restored join lost person: %+v", ctx2.emitted)
	}
}

func TestQ8JoinWindowing(t *testing.T) {
	j := newQ8Join(time.Second)
	ctx := &fakeCtx{now: int64(100 * time.Millisecond)}
	j.OnEvent(ctx, core.Event{Value: &Person{ID: 1, Name: "a"}})
	j.OnEvent(ctx, core.Event{Value: &Auction{ID: 10, Seller: 1}})
	if len(ctx.emitted) != 1 {
		t.Fatalf("same-window join failed: %+v", ctx.emitted)
	}
	// Next window: person from previous window must not match.
	ctx.now = int64(1500 * time.Millisecond)
	j.OnEvent(ctx, core.Event{Value: &Auction{ID: 11, Seller: 1}})
	if len(ctx.emitted) != 1 {
		t.Fatal("cross-window join must not emit")
	}
	// Timer expiry drops old windows: the backend holds one entry per
	// window (a person in the first, a pending auction in the second).
	if n := ctx.KeyedState().Len(); n != 2 {
		t.Fatalf("backend entries = %d", n)
	}
	j.OnTimer(ctx, ctx.now)
	if n := ctx.KeyedState().Len(); n != 1 {
		t.Fatalf("after expiry backend entries = %d", n)
	}
}

func TestQ8SnapshotRestore(t *testing.T) {
	j := newQ8Join(time.Second)
	ctx := &fakeCtx{now: 1}
	j.OnEvent(ctx, core.Event{Value: &Person{ID: 1, Name: "a"}})
	j.OnEvent(ctx, core.Event{Value: &Auction{ID: 5, Seller: 9}})
	enc := wire.NewEncoder(nil)
	ctx.KeyedState().SnapshotFull(enc)
	j2 := newQ8Join(time.Second)
	ctx2 := &fakeCtx{now: 2}
	if err := ctx2.KeyedState().Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	j2.OnEvent(ctx2, core.Event{Value: &Person{ID: 9, Name: "b"}})
	if len(ctx2.emitted) != 1 || ctx2.emitted[0].v.(*Q8Result).Auction != 5 {
		t.Fatalf("restored window state lost auction: %+v", ctx2.emitted)
	}
}

func TestQ12RunningCount(t *testing.T) {
	c := newQ12Count(time.Second)
	ctx := &fakeCtx{now: 10}
	for i := 0; i < 3; i++ {
		c.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 7}})
	}
	if len(ctx.emitted) != 3 {
		t.Fatalf("running count must emit per record: %d", len(ctx.emitted))
	}
	if got := ctx.emitted[2].v.(*Q12Result).Count; got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	// Window rollover resets counting.
	ctx.now = int64(2 * time.Second)
	c.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 7}})
	if got := ctx.emitted[3].v.(*Q12Result).Count; got != 1 {
		t.Fatalf("new window count = %d, want 1", got)
	}
	c.OnTimer(ctx, ctx.now)
	if n := ctx.KeyedState().Len(); n != 1 {
		t.Fatalf("backend entries after expiry = %d", n)
	}
}

func TestQ12SnapshotRestore(t *testing.T) {
	c := newQ12Count(time.Second)
	ctx := &fakeCtx{now: 10}
	c.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 7}})
	c.OnEvent(ctx, core.Event{Value: &Bid{Bidder: 7}})
	enc := wire.NewEncoder(nil)
	ctx.KeyedState().SnapshotFull(enc)
	c2 := newQ12Count(time.Second)
	ctx2 := &fakeCtx{now: 20}
	if err := ctx2.KeyedState().Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	c2.OnEvent(ctx2, core.Event{Value: &Bid{Bidder: 7}})
	if got := ctx2.emitted[0].v.(*Q12Result).Count; got != 3 {
		t.Fatalf("restored count = %d, want 3", got)
	}
}

func TestCountSink(t *testing.T) {
	s := NewCountSink()
	ctx := &fakeCtx{}
	s.OnEvent(ctx, core.Event{})
	s.OnEvent(ctx, core.Event{})
	enc := wire.NewEncoder(nil)
	s.Snapshot(enc)
	s2 := NewCountSink()
	if err := s2.Restore(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.Count != 2 {
		t.Fatalf("restored count = %d", s2.Count)
	}
}

func TestBidKeyBy(t *testing.T) {
	ctx := &fakeCtx{}
	bidKeyBy{}.OnEvent(ctx, core.Event{Key: 1, Value: &Bid{Auction: 1, Bidder: 42}})
	if ctx.emitted[0].key != 42 {
		t.Fatalf("rekeyed to %d, want 42", ctx.emitted[0].key)
	}
}
