package objstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func openDiskT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open(Dir=%s): %v", dir, err)
	}
	return s
}

func TestDiskPutGetDeleteRoundTrip(t *testing.T) {
	s := openDiskT(t, t.TempDir())
	key := "ckpt/q1/op/0/42" // slashes must survive the file-name escape
	data := []byte("hello blob")
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if n := s.Delete(key); n != len(data) {
		t.Fatalf("delete freed %d bytes, want %d", n, len(data))
	}
	if _, err := s.Get(key); err == nil {
		t.Fatal("get after delete succeeded")
	}
	if s.Delete(key) != 0 {
		t.Fatal("double delete freed bytes")
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openDiskT(t, dir)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("meta/ckpt-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": drop the Store value, reopen over the same directory.
	s2 := openDiskT(t, dir)
	keys := s2.List("meta/")
	if len(keys) != 5 {
		t.Fatalf("reopened store lists %d keys, want 5", len(keys))
	}
	got, err := s2.Get("meta/ckpt-3")
	if err != nil || !bytes.Equal(got, []byte{3}) {
		t.Fatalf("reopened get: %v %q", err, got)
	}
}

// TestDiskCrashAtomicity drops stray *.tmp files (a crash mid-Put) into
// the blob dir and asserts Get/List ignore them and a fresh Open sweeps
// them away.
func TestDiskCrashAtomicity(t *testing.T) {
	dir := t.TempDir()
	s := openDiskT(t, dir)
	if err := s.Put("real-key", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	for _, stray := range []string{"put-123.tmp", "put-deadbeef.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, stray), []byte("torn half-write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if keys := s.List(""); !reflect.DeepEqual(keys, []string{"real-key"}) {
		t.Fatalf("List sees stray tmp files: %v", keys)
	}
	if s.Len() != 1 {
		t.Fatalf("Len counts stray tmp files: %d", s.Len())
	}
	if _, err := s.Get("put-123"); err == nil {
		t.Fatal("Get served a stray tmp file")
	}

	// Startup sweep: reopening removes the strays from disk.
	openDiskT(t, dir)
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("startup sweep left %s behind", e.Name())
		}
	}
}

func TestDiskFsyncCounted(t *testing.T) {
	s := openDiskT(t, t.TempDir())
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Fsyncs == 0 {
		t.Fatalf("disk Put issued no fsyncs: %+v", st)
	}
}

// TestListSortedSnapshotEquality pins the List contract across the
// sort-outside-the-lock change: the result is sorted and contains
// exactly the matching key set, for both backends.
func TestListSortedSnapshotEquality(t *testing.T) {
	for _, mode := range []string{"mem", "disk"} {
		t.Run(mode, func(t *testing.T) {
			cfg := Config{}
			if mode == "disk" {
				cfg.Dir = t.TempDir()
			}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a/3", "a/1", "a/2", "b/1", "a/10"}
			for _, k := range want {
				if err := s.Put(k, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			got := s.List("a/")
			if !sort.StringsAreSorted(got) {
				t.Fatalf("List not sorted: %v", got)
			}
			wantSet := []string{"a/1", "a/10", "a/2", "a/3"}
			if !reflect.DeepEqual(got, wantSet) {
				t.Fatalf("List result set changed: got %v want %v", got, wantSet)
			}
		})
	}
}
