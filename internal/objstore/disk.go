package objstore

import (
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

const (
	blobSuffix = ".blob"
	tmpSuffix  = ".tmp"
)

// diskBackend stores each blob as one file under dir. Writes are
// crash-atomic: the blob is written to a *.tmp file, fsynced, then
// renamed to its final name and the directory fsynced — so a reader
// (including a recovering engine) only ever sees complete blobs, and a
// crash mid-Put leaves at worst a stray *.tmp that the next Open
// sweeps. Keys are URL-escaped into flat file names, so key prefixes
// remain string prefixes of file names and List stays a directory scan.
type diskBackend struct {
	dir    string
	nsyncs atomic.Uint64
}

func newDiskBackend(dir string) (*diskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &diskBackend{dir: dir}
	// Sweep temp files left by a crash mid-Put: they were never
	// renamed, so they were never acknowledged and hold no committed
	// data.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tmpSuffix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return b, nil
}

func (b *diskBackend) path(key string) string {
	return filepath.Join(b.dir, url.QueryEscape(key)+blobSuffix)
}

func (b *diskBackend) Put(key string, data []byte) error {
	f, err := os.CreateTemp(b.dir, "put-*"+tmpSuffix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := f.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	b.nsyncs.Add(1)
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, b.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	b.syncDir()
	return nil
}

// syncDir makes a rename (or unlink) durable.
func (b *diskBackend) syncDir() {
	d, err := os.Open(b.dir)
	if err != nil {
		return
	}
	if d.Sync() == nil {
		b.nsyncs.Add(1)
	}
	d.Close()
}

func (b *diskBackend) Get(key string) ([]byte, bool, error) {
	data, err := os.ReadFile(b.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (b *diskBackend) Delete(key string) (int, error) {
	p := b.path(key)
	st, err := os.Stat(p)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if err := os.Remove(p); err != nil {
		return 0, err
	}
	b.syncDir()
	return int(st.Size()), nil
}

func (b *diskBackend) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, blobSuffix) {
			continue
		}
		key, err := url.QueryUnescape(strings.TrimSuffix(name, blobSuffix))
		if err != nil {
			continue // not one of ours
		}
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	return keys, nil
}

func (b *diskBackend) Len() int {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), blobSuffix) {
			n++
		}
	}
	return n
}

func (b *diskBackend) Fsyncs() uint64 { return b.nsyncs.Load() }
