// Package objstore models the persistent object store the paper's
// testbed uses for operator state checkpoints (Minio). It is a durable
// (failure-surviving) key-value blob store with configurable PUT/GET
// latency, so checkpoint time = serialization + upload, and restart time
// includes state download — the two cost components the paper measures.
//
// Two backends sit behind the Store API: the default in-memory map (the
// fast test path, surviving simulated worker failures but not process
// crashes) and a disk backend (Config.Dir) that stores each blob as a
// file via write-temp-fsync-rename, so checkpoints survive a real
// process crash and a restarted engine can recover from the files.
// Latency simulation and failure injection compose with either backend.
package objstore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config controls the store behaviour.
type Config struct {
	// PutLatency is the simulated latency of a blob upload.
	PutLatency time.Duration
	// GetLatency is the simulated latency of a blob download.
	GetLatency time.Duration
	// PerByteLatency adds latency proportional to the blob size, modelling
	// limited bandwidth to the store. Expressed as duration per byte.
	PerByteLatency time.Duration
	// FailureRate injects transient errors: each Put/Get fails with this
	// probability (0..1) before touching the blob, modelling the flaky
	// object-store RPCs a production deployment retries. 0 disables.
	FailureRate float64
	// Seed drives the deterministic failure injection.
	Seed int64
	// Dir, when non-empty, selects the disk backend: blobs live as
	// files under Dir, written crash-atomically (temp + fsync + rename).
	Dir string
	// Fault, when non-nil, is consulted on every Put/Get and may add
	// latency and/or fail the operation — the chaos plane's windowed
	// brownouts, outages and latency spikes plug in here, composing
	// with (not replacing) the Bernoulli FailureRate above.
	Fault FaultInjector
}

// FaultInjector is the chaos-plane seam: given an operation name ("put",
// "get") and a payload size, it returns extra latency to add and/or an
// error that fails the operation. Implemented by chaos.Injector; defined
// here so objstore does not import the chaos package.
type FaultInjector interface {
	StoreOp(op string, n int) (time.Duration, error)
}

// Backend is the seam between the Store API and blob persistence. The
// in-memory map is the default; the disk backend adds real durability.
// List returns an unsorted snapshot — the Store sorts above the seam so
// no backend holds a lock across the sort.
type Backend interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, bool, error)
	Delete(key string) (int, error)
	List(prefix string) ([]string, error)
	Len() int
	// Fsyncs reports how many fsync calls the backend has issued
	// (always zero for the in-memory backend).
	Fsyncs() uint64
}

// Store is a durable blob store. The zero value is not usable; construct
// with New or Open.
type Store struct {
	cfg     Config
	backend Backend

	puts      atomic.Uint64
	gets      atomic.Uint64
	putBytes  atomic.Uint64
	getBytes  atomic.Uint64
	failures  atomic.Uint64
	errors    atomic.Uint64
	sleepFunc func(time.Duration)

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Open returns a store with the backend selected by cfg: in-memory by
// default, disk-backed when cfg.Dir is set (creating the directory and
// sweeping stale *.tmp files left by a crash mid-Put).
func Open(cfg Config) (*Store, error) {
	var backend Backend
	if cfg.Dir != "" {
		db, err := newDiskBackend(cfg.Dir)
		if err != nil {
			return nil, err
		}
		backend = db
	} else {
		backend = newMemBackend()
	}
	s := &Store{cfg: cfg, backend: backend, sleepFunc: time.Sleep}
	if cfg.FailureRate > 0 {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return s, nil
}

// New returns an empty in-memory store with the given config. It
// panics if cfg selects a disk backend that fails to initialize; use
// Open to handle that error.
func New(cfg Config) *Store {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("objstore: %v", err))
	}
	return s
}

// injectFailure reports whether this operation should fail.
func (s *Store) injectFailure() bool {
	if s.rng == nil {
		return false
	}
	s.rngMu.Lock()
	fail := s.rng.Float64() < s.cfg.FailureRate
	s.rngMu.Unlock()
	if fail {
		s.failures.Add(1)
	}
	return fail
}

// SetSleepFunc overrides the latency sleep, for tests.
func (s *Store) SetSleepFunc(f func(time.Duration)) { s.sleepFunc = f }

// injectFault consults the configured chaos-plane injector: any extra
// latency is slept through sleepFunc; a returned error fails the op and
// counts as an injected failure.
func (s *Store) injectFault(op string, n int) error {
	if s.cfg.Fault == nil {
		return nil
	}
	d, err := s.cfg.Fault.StoreOp(op, n)
	if d > 0 {
		s.sleepFunc(d)
	}
	if err != nil {
		s.failures.Add(1)
	}
	return err
}

func (s *Store) simulate(base time.Duration, n int) {
	d := base + time.Duration(n)*s.cfg.PerByteLatency
	if d > 0 {
		s.sleepFunc(d)
	}
}

// Put stores a copy of data under key, overwriting any previous blob.
func (s *Store) Put(key string, data []byte) error {
	if s.injectFailure() {
		return fmt.Errorf("objstore: injected transient PUT failure for %q", key)
	}
	if err := s.injectFault("put", len(data)); err != nil {
		return fmt.Errorf("objstore: put %q: %w", key, err)
	}
	s.simulate(s.cfg.PutLatency, len(data))
	if err := s.backend.Put(key, data); err != nil {
		s.errors.Add(1)
		return fmt.Errorf("objstore: put %q: %w", key, err)
	}
	s.puts.Add(1)
	s.putBytes.Add(uint64(len(data)))
	return nil
}

// Get returns a copy of the blob stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	if s.injectFailure() {
		return nil, fmt.Errorf("objstore: injected transient GET failure for %q", key)
	}
	if err := s.injectFault("get", 0); err != nil {
		return nil, fmt.Errorf("objstore: get %q: %w", key, err)
	}
	data, ok, err := s.backend.Get(key)
	if err != nil {
		s.errors.Add(1)
		return nil, fmt.Errorf("objstore: get %q: %w", key, err)
	}
	if !ok {
		return nil, fmt.Errorf("objstore: key %q not found", key)
	}
	s.simulate(s.cfg.GetLatency, len(data))
	s.gets.Add(1)
	s.getBytes.Add(uint64(len(data)))
	return data, nil
}

// Delete removes the blob stored under key and returns the number of bytes
// freed. Deleting a missing key is not an error (idempotent, like S3) and
// frees zero bytes.
func (s *Store) Delete(key string) int {
	n, err := s.backend.Delete(key)
	if err != nil {
		s.errors.Add(1)
	}
	return n
}

// List returns all keys with the given prefix, sorted. The backend
// hands back an unsorted snapshot and the sort happens here, above the
// seam, so no lock is held across it.
func (s *Store) List(prefix string) []string {
	keys, err := s.backend.List(prefix)
	if err != nil {
		s.errors.Add(1)
		return nil
	}
	sort.Strings(keys)
	return keys
}

// Len reports the number of stored blobs.
func (s *Store) Len() int { return s.backend.Len() }

// Stats reports cumulative operation counters.
type Stats struct {
	Puts     uint64
	Gets     uint64
	PutBytes uint64
	GetBytes uint64
	// Failures counts injected transient errors.
	Failures uint64
	// Errors counts real backend I/O errors (disk backend only).
	Errors uint64
	// Fsyncs counts backend fsync calls (zero for in-memory).
	Fsyncs uint64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:     s.puts.Load(),
		Gets:     s.gets.Load(),
		PutBytes: s.putBytes.Load(),
		GetBytes: s.getBytes.Load(),
		Failures: s.failures.Load(),
		Errors:   s.errors.Load(),
		Fsyncs:   s.backend.Fsyncs(),
	}
}

// memBackend is the default in-memory blob map.
type memBackend struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

func newMemBackend() *memBackend {
	return &memBackend{blobs: make(map[string][]byte)}
}

func (b *memBackend) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	b.blobs[key] = cp
	b.mu.Unlock()
	return nil
}

func (b *memBackend) Get(key string) ([]byte, bool, error) {
	b.mu.RLock()
	data, ok := b.blobs[key]
	b.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true, nil
}

func (b *memBackend) Delete(key string) (int, error) {
	b.mu.Lock()
	n := len(b.blobs[key])
	delete(b.blobs, key)
	b.mu.Unlock()
	return n, nil
}

func (b *memBackend) List(prefix string) ([]string, error) {
	b.mu.RLock()
	keys := make([]string, 0, 8)
	for k := range b.blobs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	b.mu.RUnlock()
	return keys, nil
}

func (b *memBackend) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.blobs)
}

func (b *memBackend) Fsyncs() uint64 { return 0 }
