// Package objstore simulates the persistent object store the paper's
// testbed uses for operator state checkpoints (Minio). It is a durable
// (failure-surviving) key-value blob store with configurable PUT/GET
// latency, so checkpoint time = serialization + upload, and restart time
// includes state download — the two cost components the paper measures.
package objstore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config controls the simulated store behaviour.
type Config struct {
	// PutLatency is the simulated latency of a blob upload.
	PutLatency time.Duration
	// GetLatency is the simulated latency of a blob download.
	GetLatency time.Duration
	// PerByteLatency adds latency proportional to the blob size, modelling
	// limited bandwidth to the store. Expressed as duration per byte.
	PerByteLatency time.Duration
	// FailureRate injects transient errors: each Put/Get fails with this
	// probability (0..1) before touching the blob, modelling the flaky
	// object-store RPCs a production deployment retries. 0 disables.
	FailureRate float64
	// Seed drives the deterministic failure injection.
	Seed int64
}

// Store is a durable blob store. The zero value is not usable; construct
// with New.
type Store struct {
	cfg Config

	mu    sync.RWMutex
	blobs map[string][]byte

	puts      atomic.Uint64
	gets      atomic.Uint64
	putBytes  atomic.Uint64
	getBytes  atomic.Uint64
	failures  atomic.Uint64
	sleepFunc func(time.Duration)

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New returns an empty store with the given config.
func New(cfg Config) *Store {
	s := &Store{cfg: cfg, blobs: make(map[string][]byte), sleepFunc: time.Sleep}
	if cfg.FailureRate > 0 {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return s
}

// injectFailure reports whether this operation should fail.
func (s *Store) injectFailure() bool {
	if s.rng == nil {
		return false
	}
	s.rngMu.Lock()
	fail := s.rng.Float64() < s.cfg.FailureRate
	s.rngMu.Unlock()
	if fail {
		s.failures.Add(1)
	}
	return fail
}

// SetSleepFunc overrides the latency sleep, for tests.
func (s *Store) SetSleepFunc(f func(time.Duration)) { s.sleepFunc = f }

func (s *Store) simulate(base time.Duration, n int) {
	d := base + time.Duration(n)*s.cfg.PerByteLatency
	if d > 0 {
		s.sleepFunc(d)
	}
}

// Put stores a copy of data under key, overwriting any previous blob.
func (s *Store) Put(key string, data []byte) error {
	if s.injectFailure() {
		return fmt.Errorf("objstore: injected transient PUT failure for %q", key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.simulate(s.cfg.PutLatency, len(data))
	s.mu.Lock()
	s.blobs[key] = cp
	s.mu.Unlock()
	s.puts.Add(1)
	s.putBytes.Add(uint64(len(data)))
	return nil
}

// Get returns a copy of the blob stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	if s.injectFailure() {
		return nil, fmt.Errorf("objstore: injected transient GET failure for %q", key)
	}
	s.mu.RLock()
	data, ok := s.blobs[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("objstore: key %q not found", key)
	}
	s.simulate(s.cfg.GetLatency, len(data))
	cp := make([]byte, len(data))
	copy(cp, data)
	s.gets.Add(1)
	s.getBytes.Add(uint64(len(data)))
	return cp, nil
}

// Delete removes the blob stored under key and returns the number of bytes
// freed. Deleting a missing key is not an error (idempotent, like S3) and
// frees zero bytes.
func (s *Store) Delete(key string) int {
	s.mu.Lock()
	n := len(s.blobs[key])
	delete(s.blobs, key)
	s.mu.Unlock()
	return n
}

// List returns all keys with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	keys := make([]string, 0, 8)
	for k := range s.blobs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Len reports the number of stored blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// Stats reports cumulative operation counters.
type Stats struct {
	Puts     uint64
	Gets     uint64
	PutBytes uint64
	GetBytes uint64
	// Failures counts injected transient errors.
	Failures uint64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:     s.puts.Load(),
		Gets:     s.gets.Load(),
		PutBytes: s.putBytes.Load(),
		GetBytes: s.getBytes.Load(),
		Failures: s.failures.Load(),
	}
}
