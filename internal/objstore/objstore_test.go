package objstore

import (
	"sync"
	"testing"
	"time"
)

func TestPutGetDelete(t *testing.T) {
	s := New(Config{})
	if err := s.Put("a/1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/1")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Returned blob must be a copy.
	got[0] = 'X'
	again, _ := s.Get("a/1")
	if string(again) != "hello" {
		t.Fatal("Get returned aliasing slice")
	}
	s.Delete("a/1")
	if _, err := s.Get("a/1"); err == nil {
		t.Fatal("Get after Delete should fail")
	}
	s.Delete("a/1") // idempotent
}

func TestPutCopiesInput(t *testing.T) {
	s := New(Config{})
	data := []byte("abc")
	if err := s.Put("k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'Z'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("Put aliased caller's buffer")
	}
}

func TestOverwrite(t *testing.T) {
	s := New(Config{})
	_ = s.Put("k", []byte("v1"))
	_ = s.Put("k", []byte("v2"))
	got, _ := s.Get("k")
	if string(got) != "v2" {
		t.Fatalf("Get = %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestList(t *testing.T) {
	s := New(Config{})
	for _, k := range []string{"ckpt/op1/3", "ckpt/op1/1", "ckpt/op2/1", "other"} {
		_ = s.Put(k, nil)
	}
	got := s.List("ckpt/op1/")
	if len(got) != 2 || got[0] != "ckpt/op1/1" || got[1] != "ckpt/op1/3" {
		t.Fatalf("List = %v", got)
	}
	if got := s.List("none/"); len(got) != 0 {
		t.Fatalf("List none = %v", got)
	}
}

func TestStats(t *testing.T) {
	s := New(Config{})
	_ = s.Put("a", make([]byte, 100))
	_ = s.Put("b", make([]byte, 50))
	_, _ = s.Get("a")
	st := s.Stats()
	if st.Puts != 2 || st.Gets != 1 || st.PutBytes != 150 || st.GetBytes != 100 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestLatencySimulation(t *testing.T) {
	s := New(Config{PutLatency: 3 * time.Millisecond, GetLatency: time.Millisecond, PerByteLatency: time.Nanosecond})
	var slept time.Duration
	s.SetSleepFunc(func(d time.Duration) { slept += d })
	_ = s.Put("k", make([]byte, 1000))
	if want := 3*time.Millisecond + 1000*time.Nanosecond; slept != want {
		t.Fatalf("put slept %v, want %v", slept, want)
	}
	slept = 0
	_, _ = s.Get("k")
	if want := time.Millisecond + 1000*time.Nanosecond; slept != want {
		t.Fatalf("get slept %v, want %v", slept, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := string(rune('a' + g))
			for i := 0; i < 200; i++ {
				_ = s.Put(key, []byte{byte(i)})
				if b, err := s.Get(key); err != nil || len(b) != 1 {
					t.Errorf("get %q: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestFailureInjectionDeterministic(t *testing.T) {
	run := func() (failures uint64, errs int) {
		s := New(Config{FailureRate: 0.5, Seed: 42})
		for i := 0; i < 100; i++ {
			if err := s.Put("k", []byte("v")); err != nil {
				errs++
			}
			if _, err := s.Get("k"); err != nil {
				errs++
			}
		}
		return s.Stats().Failures, errs
	}
	f1, e1 := run()
	f2, e2 := run()
	if f1 != f2 || e1 != e2 {
		t.Fatalf("injection not deterministic: %d/%d vs %d/%d", f1, e1, f2, e2)
	}
	if f1 == 0 || uint64(e1) != f1 {
		t.Fatalf("failures=%d errs=%d", f1, e1)
	}
	// Roughly half of 200 ops should fail at rate 0.5.
	if f1 < 60 || f1 > 140 {
		t.Fatalf("failure count %d implausible for rate 0.5", f1)
	}
}

func TestZeroFailureRateNeverFails(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 50; i++ {
		if err := s.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Failures != 0 {
		t.Fatal("failures injected at rate 0")
	}
}
