// Package chaos is the deterministic fault plane of the engine: a seeded
// schedule of hostile conditions (object-store brownouts and outages,
// latency spikes, WAL fsync stalls, exchange delay/jitter) plus the shared
// retry policy (exponential backoff, jitter, per-op deadline, retry budget)
// that every store-facing operation runs under.
//
// The package composes over existing seams rather than adding new ones: an
// Injector plugs into objstore.Config.Fault, wal.Options.FsyncDelay and the
// engine's exchange flush path; a RetryPolicy replaces the ad-hoc bounded
// retry loops that used to live in the uploader, the meta writer and the
// recovery blob fetcher. Everything is nil-safe: a nil *Injector and a nil
// *RetryPolicy behave as "no chaos, single attempt", so callers never
// branch on whether chaos is configured.
//
// Determinism: every random decision (brownout Bernoulli draws, backoff
// jitter) comes from a seeded PRNG, and fault windows are expressed as
// offsets from Arm() — the moment the engine starts — so a scenario replays
// identically for a given (Plan, workload seed) pair.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Window is one fault interval, expressed relative to Arm() time.
type Window struct {
	// At is the offset from Arm() at which the window opens.
	At time.Duration `json:"at"`
	// For is how long the window stays open.
	For time.Duration `json:"for"`
}

// Contains reports whether the window is open at the given elapsed time.
func (w Window) Contains(elapsed time.Duration) bool {
	return elapsed >= w.At && elapsed < w.At+w.For
}

// Plan is a declarative, seeded fault schedule. The zero Plan injects
// nothing (Empty returns true).
type Plan struct {
	// Seed drives the plan's PRNG (brownout draws, jitter). Zero means 1.
	Seed int64

	// Brownout windows fail store operations with probability
	// BrownoutRate and are the "slow, flaky store" shape.
	Brownout     []Window
	BrownoutRate float64 // default 0.5

	// Outage windows fail every store operation — a total store outage.
	Outage []Window

	// LatencySpike windows add SpikeLatency to every store operation.
	LatencySpike []Window
	SpikeLatency time.Duration // default 25ms

	// FsyncStall windows add StallDuration to every WAL fsync.
	FsyncStall    []Window
	StallDuration time.Duration // default 5ms

	// ExchangeDelay (+- ExchangeJitter) is added to every data-plane
	// batch handoff between operator instances, modelling a slow or
	// jittery network for the whole run (not windowed: exchange delay
	// shifts steady-state behaviour, which is what the straggler/skew
	// scenarios measure).
	ExchangeDelay  time.Duration
	ExchangeJitter time.Duration
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return len(p.Brownout) == 0 && len(p.Outage) == 0 && len(p.LatencySpike) == 0 &&
		len(p.FsyncStall) == 0 && p.ExchangeDelay == 0 && p.ExchangeJitter == 0
}

// ErrInjected marks failures manufactured by the chaos plane, so tests and
// logs can tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// InjectorStats is a snapshot of the injector's fault counters.
type InjectorStats struct {
	StoreErrors uint64 // store ops failed by outage/brownout windows
	StoreSpikes uint64 // store ops delayed by latency-spike windows
	FsyncStalls uint64 // WAL fsyncs stalled
}

// Injector evaluates a Plan against a wall clock armed at engine start. All
// methods are safe on a nil receiver (they inject nothing) and safe for
// concurrent use.
type Injector struct {
	plan   Plan
	origin atomic.Int64 // unix nanos of Arm(); 0 = not yet armed

	mu  sync.Mutex
	rng *rand.Rand

	storeErrors atomic.Uint64
	storeSpikes atomic.Uint64
	fsyncStalls atomic.Uint64
}

// NewInjector builds an injector for the plan, applying defaults.
func NewInjector(p Plan) *Injector {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BrownoutRate <= 0 {
		p.BrownoutRate = 0.5
	}
	if p.SpikeLatency <= 0 {
		p.SpikeLatency = 25 * time.Millisecond
	}
	if p.StallDuration <= 0 {
		p.StallDuration = 5 * time.Millisecond
	}
	return &Injector{plan: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Arm sets the injector's time origin; fault windows are offsets from this
// moment. The first call wins; later calls are no-ops, so an engine restart
// within a run does not shift the schedule. Nil-safe.
func (in *Injector) Arm() {
	if in == nil {
		return
	}
	in.origin.CompareAndSwap(0, time.Now().UnixNano())
}

// elapsed returns time since Arm, arming lazily if needed.
func (in *Injector) elapsed() time.Duration {
	o := in.origin.Load()
	if o == 0 {
		in.Arm()
		o = in.origin.Load()
	}
	return time.Duration(time.Now().UnixNano() - o)
}

func anyContains(ws []Window, elapsed time.Duration) bool {
	for _, w := range ws {
		if w.Contains(elapsed) {
			return true
		}
	}
	return false
}

// StoreOp is consulted by the object store on every operation; it returns
// extra latency to add and/or an error that fails the op. op is "put" or
// "get"; n is the payload size. Implements objstore's fault-injector seam.
func (in *Injector) StoreOp(op string, n int) (time.Duration, error) {
	if in == nil || in.planStoreQuiet() {
		return 0, nil
	}
	elapsed := in.elapsed()
	var delay time.Duration
	if anyContains(in.plan.LatencySpike, elapsed) {
		delay = in.plan.SpikeLatency
		in.storeSpikes.Add(1)
	}
	if anyContains(in.plan.Outage, elapsed) {
		in.storeErrors.Add(1)
		return delay, fmt.Errorf("%w: store outage (%s %dB)", ErrInjected, op, n)
	}
	if anyContains(in.plan.Brownout, elapsed) {
		in.mu.Lock()
		hit := in.rng.Float64() < in.plan.BrownoutRate
		in.mu.Unlock()
		if hit {
			in.storeErrors.Add(1)
			return delay, fmt.Errorf("%w: store brownout (%s %dB)", ErrInjected, op, n)
		}
	}
	return delay, nil
}

func (in *Injector) planStoreQuiet() bool {
	return len(in.plan.Brownout) == 0 && len(in.plan.Outage) == 0 && len(in.plan.LatencySpike) == 0
}

// FsyncDelay is consulted by the WAL before every fsync; it returns the
// stall to add (zero outside FsyncStall windows). Nil-safe.
func (in *Injector) FsyncDelay() time.Duration {
	if in == nil || len(in.plan.FsyncStall) == 0 {
		return 0
	}
	if anyContains(in.plan.FsyncStall, in.elapsed()) {
		in.fsyncStalls.Add(1)
		return in.plan.StallDuration
	}
	return 0
}

// ExchangeDelay returns the per-batch exchange delay (fixed + jitter).
// Nil-safe; zero when the plan has no exchange shaping.
func (in *Injector) ExchangeDelay() time.Duration {
	if in == nil || (in.plan.ExchangeDelay == 0 && in.plan.ExchangeJitter == 0) {
		return 0
	}
	d := in.plan.ExchangeDelay
	if j := in.plan.ExchangeJitter; j > 0 {
		in.mu.Lock()
		d += time.Duration(in.rng.Int63n(int64(j) + 1))
		in.mu.Unlock()
	}
	return d
}

// Stats snapshots the injector's fault counters. Nil-safe.
func (in *Injector) Stats() InjectorStats {
	if in == nil {
		return InjectorStats{}
	}
	return InjectorStats{
		StoreErrors: in.storeErrors.Load(),
		StoreSpikes: in.storeSpikes.Load(),
		FsyncStalls: in.fsyncStalls.Load(),
	}
}

// ---- Retry policy ----

// RetryCounters accumulates retry accounting across every operation run
// under one policy; share one instance per engine and surface Snapshot()
// on /metrics.
type RetryCounters struct {
	Attempts     atomic.Uint64 // every f() invocation, first tries included
	Retries      atomic.Uint64 // re-invocations after a failure
	Exhausted    atomic.Uint64 // operations that gave up (attempts/deadline)
	BudgetDenied atomic.Uint64 // retries suppressed by the retry budget
	BackoffNanos atomic.Uint64 // total time spent sleeping in backoff
}

// RetryStats is a plain-value snapshot of RetryCounters.
type RetryStats struct {
	Attempts     uint64
	Retries      uint64
	Exhausted    uint64
	BudgetDenied uint64
	Backoff      time.Duration
}

// Snapshot returns the current counter values. Nil-safe.
func (c *RetryCounters) Snapshot() RetryStats {
	if c == nil {
		return RetryStats{}
	}
	return RetryStats{
		Attempts:     c.Attempts.Load(),
		Retries:      c.Retries.Load(),
		Exhausted:    c.Exhausted.Load(),
		BudgetDenied: c.BudgetDenied.Load(),
		Backoff:      time.Duration(c.BackoffNanos.Load()),
	}
}

// Budget is a token-bucket retry budget shared across operations: each
// retry (not first attempt) spends one token; an empty bucket fails the
// operation immediately instead of hammering a store that is already down.
// Nil-safe: a nil budget always allows.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	refill float64 // tokens per second
	last   time.Time
}

// NewBudget returns a bucket holding max tokens, refilling at refillPerSec.
func NewBudget(max, refillPerSec float64) *Budget {
	return &Budget{tokens: max, max: max, refill: refillPerSec, last: time.Now()}
}

func (b *Budget) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if b.refill > 0 && !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.refill
		if b.tokens > b.max {
			b.tokens = b.max
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryPolicy runs operations with bounded exponential backoff. The zero
// value (and a nil pointer) is usable: nil means "one attempt, no retry";
// a zero-value policy gets the defaults below on first use.
type RetryPolicy struct {
	MaxAttempts int           // default 4
	BaseDelay   time.Duration // default 1ms
	MaxDelay    time.Duration // default 100ms
	Multiplier  float64       // default 2
	Jitter      float64       // +-fraction of each delay, default 0.5
	OpDeadline  time.Duration // overall wall-clock cap per Do call; 0 = none
	Budget      *Budget       // optional shared retry budget
	Counters    *RetryCounters
	// OnBackoff observes each backoff sleep (op name, attempt number just
	// failed, sleep duration) — the engine hooks trace spans here.
	OnBackoff func(op string, attempt int, d time.Duration)
	Seed      int64
	// Sleep replaces time.Sleep in tests.
	Sleep func(time.Duration)

	initOnce sync.Once
	mu       sync.Mutex
	rng      *rand.Rand
}

func (p *RetryPolicy) init() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	} else if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	p.rng = rand.New(rand.NewSource(seed))
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
}

// jittered returns d scaled by a random factor in [1-Jitter, 1+Jitter].
func (p *RetryPolicy) jittered(d time.Duration) time.Duration {
	p.mu.Lock()
	f := 1 - p.Jitter + 2*p.Jitter*p.rng.Float64()
	p.mu.Unlock()
	j := time.Duration(float64(d) * f)
	if j < 0 {
		j = 0
	}
	return j
}

// Do runs f under the policy, retrying transient failures with exponential
// backoff until success, attempt exhaustion, deadline expiry or budget
// denial. op names the operation in errors, counters and backoff callbacks
// (e.g. "ckpt.put"). A nil policy runs f exactly once.
func (p *RetryPolicy) Do(op string, f func() error) error {
	if p == nil {
		return f()
	}
	p.initOnce.Do(p.init)
	var deadline time.Time
	if p.OpDeadline > 0 {
		deadline = time.Now().Add(p.OpDeadline)
	}
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if p.Counters != nil {
			p.Counters.Attempts.Add(1)
		}
		if err = f(); err == nil {
			return nil
		}
		if attempt >= p.MaxAttempts {
			if p.Counters != nil {
				p.Counters.Exhausted.Add(1)
			}
			return fmt.Errorf("chaos: %s failed after %d attempts: %w", op, attempt, err)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			if p.Counters != nil {
				p.Counters.Exhausted.Add(1)
			}
			return fmt.Errorf("chaos: %s deadline (%v) exceeded after %d attempts: %w", op, p.OpDeadline, attempt, err)
		}
		if !p.Budget.allow() {
			if p.Counters != nil {
				p.Counters.BudgetDenied.Add(1)
				p.Counters.Exhausted.Add(1)
			}
			return fmt.Errorf("chaos: %s retry budget exhausted after %d attempts: %w", op, attempt, err)
		}
		d := p.jittered(delay)
		if p.OnBackoff != nil {
			p.OnBackoff(op, attempt, d)
		}
		if p.Counters != nil {
			p.Counters.Retries.Add(1)
			p.Counters.BackoffNanos.Add(uint64(d))
		}
		p.Sleep(d)
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
