package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWindowContains(t *testing.T) {
	w := Window{At: 100 * time.Millisecond, For: 50 * time.Millisecond}
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{
		{0, false},
		{99 * time.Millisecond, false},
		{100 * time.Millisecond, true},
		{149 * time.Millisecond, true},
		{150 * time.Millisecond, false},
	} {
		if got := w.Contains(tc.at); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestPlanEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Fatal("zero plan should be empty")
	}
	if (Plan{Outage: []Window{{0, time.Second}}}).Empty() {
		t.Fatal("plan with outage should not be empty")
	}
	if (Plan{ExchangeDelay: time.Millisecond}).Empty() {
		t.Fatal("plan with exchange delay should not be empty")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	in.Arm()
	if d, err := in.StoreOp("put", 10); d != 0 || err != nil {
		t.Fatalf("nil injector StoreOp = (%v, %v)", d, err)
	}
	if d := in.FsyncDelay(); d != 0 {
		t.Fatalf("nil injector FsyncDelay = %v", d)
	}
	if d := in.ExchangeDelay(); d != 0 {
		t.Fatalf("nil injector ExchangeDelay = %v", d)
	}
	if s := in.Stats(); s != (InjectorStats{}) {
		t.Fatalf("nil injector Stats = %+v", s)
	}
}

func TestInjectorOutageWindow(t *testing.T) {
	in := NewInjector(Plan{Outage: []Window{{At: 0, For: time.Hour}}})
	in.Arm()
	_, err := in.StoreOp("put", 1)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("inside outage window want ErrInjected, got %v", err)
	}
	// A window entirely in the future injects nothing now.
	in2 := NewInjector(Plan{Outage: []Window{{At: time.Hour, For: time.Hour}}})
	in2.Arm()
	if _, err := in2.StoreOp("get", 1); err != nil {
		t.Fatalf("outside outage window want nil, got %v", err)
	}
	if got := in.Stats().StoreErrors; got != 1 {
		t.Fatalf("StoreErrors = %d, want 1", got)
	}
}

func TestInjectorBrownoutRate(t *testing.T) {
	in := NewInjector(Plan{
		Brownout:     []Window{{At: 0, For: time.Hour}},
		BrownoutRate: 0.5,
		Seed:         7,
	})
	in.Arm()
	fails := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := in.StoreOp("put", 1); err != nil {
			fails++
		}
	}
	if fails < n/4 || fails > 3*n/4 {
		t.Fatalf("brownout rate 0.5 produced %d/%d failures", fails, n)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		in := NewInjector(Plan{Brownout: []Window{{0, time.Hour}}, BrownoutRate: 0.3, Seed: 42})
		in.Arm()
		var out []bool
		for i := 0; i < 100; i++ {
			_, err := in.StoreOp("put", 1)
			out = append(out, err != nil)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}

func TestInjectorLatencySpike(t *testing.T) {
	in := NewInjector(Plan{
		LatencySpike: []Window{{At: 0, For: time.Hour}},
		SpikeLatency: 7 * time.Millisecond,
	})
	in.Arm()
	d, err := in.StoreOp("get", 1)
	if err != nil || d != 7*time.Millisecond {
		t.Fatalf("spike StoreOp = (%v, %v), want (7ms, nil)", d, err)
	}
	if got := in.Stats().StoreSpikes; got != 1 {
		t.Fatalf("StoreSpikes = %d, want 1", got)
	}
}

func TestInjectorFsyncStall(t *testing.T) {
	in := NewInjector(Plan{
		FsyncStall:    []Window{{At: 0, For: time.Hour}},
		StallDuration: 3 * time.Millisecond,
	})
	in.Arm()
	if d := in.FsyncDelay(); d != 3*time.Millisecond {
		t.Fatalf("FsyncDelay = %v, want 3ms", d)
	}
	if got := in.Stats().FsyncStalls; got != 1 {
		t.Fatalf("FsyncStalls = %d, want 1", got)
	}
}

func TestInjectorExchangeDelay(t *testing.T) {
	in := NewInjector(Plan{ExchangeDelay: 2 * time.Millisecond, ExchangeJitter: time.Millisecond})
	in.Arm()
	for i := 0; i < 50; i++ {
		d := in.ExchangeDelay()
		if d < 2*time.Millisecond || d > 3*time.Millisecond {
			t.Fatalf("ExchangeDelay = %v, want within [2ms, 3ms]", d)
		}
	}
}

func TestRetryNilPolicySingleAttempt(t *testing.T) {
	var p *RetryPolicy
	calls := 0
	err := p.Do("op", func() error { calls++; return errors.New("boom") })
	if err == nil || calls != 1 {
		t.Fatalf("nil policy: calls=%d err=%v, want 1 call and the error", calls, err)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	c := &RetryCounters{}
	p := &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond, Counters: c, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do("op", func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v, want 3 calls and nil", calls, err)
	}
	s := c.Snapshot()
	if s.Attempts != 3 || s.Retries != 2 || s.Exhausted != 0 {
		t.Fatalf("counters = %+v", s)
	}
}

func TestRetryExhaustion(t *testing.T) {
	c := &RetryCounters{}
	p := &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, Counters: c, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do("ckpt.put", func() error { calls++; return errors.New("down") })
	if err == nil || calls != 3 {
		t.Fatalf("calls=%d err=%v, want 3 calls and error", calls, err)
	}
	if !strings.Contains(err.Error(), "ckpt.put") || !strings.Contains(err.Error(), "down") {
		t.Fatalf("error should name op and wrap cause: %v", err)
	}
	if s := c.Snapshot(); s.Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", s.Exhausted)
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	var sleeps []time.Duration
	p := &RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.001, // effectively none, keeps the growth visible
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	_ = p.Do("op", func() error { return errors.New("x") })
	if len(sleeps) != 5 {
		t.Fatalf("got %d sleeps, want 5", len(sleeps))
	}
	approx := func(d, want time.Duration) bool {
		diff := d - want
		if diff < 0 {
			diff = -diff
		}
		return diff < want/10
	}
	wants := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range wants {
		if !approx(sleeps[i], w*time.Millisecond) {
			t.Fatalf("sleep %d = %v, want ~%vms (all: %v)", i, sleeps[i], w, sleeps)
		}
	}
}

func TestRetryOpDeadline(t *testing.T) {
	c := &RetryCounters{}
	p := &RetryPolicy{
		MaxAttempts: 1000,
		BaseDelay:   time.Millisecond,
		OpDeadline:  time.Nanosecond, // expires immediately after the first attempt
		Counters:    c,
		Sleep:       func(time.Duration) {},
	}
	calls := 0
	err := p.Do("op", func() error { calls++; time.Sleep(time.Millisecond); return errors.New("x") })
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (deadline should stop retries)", calls)
	}
}

func TestRetryBudgetDenied(t *testing.T) {
	c := &RetryCounters{}
	b := NewBudget(1, 0) // one retry token, no refill
	p := &RetryPolicy{MaxAttempts: 10, BaseDelay: time.Microsecond, Budget: b, Counters: c, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do("op", func() error { calls++; return errors.New("x") })
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want budget error, got %v", err)
	}
	if calls != 2 { // first attempt + the single budgeted retry
		t.Fatalf("calls = %d, want 2", calls)
	}
	if s := c.Snapshot(); s.BudgetDenied != 1 {
		t.Fatalf("BudgetDenied = %d, want 1", s.BudgetDenied)
	}
}

func TestRetryOnBackoffCallback(t *testing.T) {
	type bk struct {
		op      string
		attempt int
	}
	var seen []bk
	p := &RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		OnBackoff:   func(op string, attempt int, d time.Duration) { seen = append(seen, bk{op, attempt}) },
		Sleep:       func(time.Duration) {},
	}
	_ = p.Do("meta.put", func() error { return errors.New("x") })
	if len(seen) != 2 || seen[0] != (bk{"meta.put", 1}) || seen[1] != (bk{"meta.put", 2}) {
		t.Fatalf("backoff callbacks = %+v", seen)
	}
}

func TestBudgetRefill(t *testing.T) {
	b := NewBudget(1, 1000) // refill fast
	if !b.allow() {
		t.Fatal("first allow should pass")
	}
	if b.allow() {
		t.Fatal("bucket should be empty immediately after")
	}
	time.Sleep(5 * time.Millisecond)
	if !b.allow() {
		t.Fatal("bucket should have refilled")
	}
	var nb *Budget
	if !nb.allow() {
		t.Fatal("nil budget must always allow")
	}
}
