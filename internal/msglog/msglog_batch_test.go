package msglog

import (
	"fmt"
	"testing"
)

// The test batch format: data[0] is the first sequence number, every
// following byte is one record (its value = its sequence number), so slices
// are trivially checkable.
func testBatch(firstSeq uint64, count int) []byte {
	b := []byte{byte(firstSeq)}
	for i := 0; i < count; i++ {
		b = append(b, byte(firstSeq+uint64(i)))
	}
	return b
}

func testSlicer(data []byte, fromSeq, toSeq uint64) ([]byte, int, error) {
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("short test batch")
	}
	first := uint64(data[0])
	last := first + uint64(len(data)-2)
	lo, hi := first, last
	if fromSeq > lo {
		lo = fromSeq
	}
	if toSeq < hi {
		hi = toSeq
	}
	if lo > hi {
		return nil, 0, nil
	}
	out := []byte{byte(lo)}
	out = append(out, data[1+lo-first:1+hi-first+1]...)
	return out, int(hi - lo + 1), nil
}

// expectRecords asserts that entries cover exactly seqs [from, to] in order.
func expectRecords(t *testing.T, entries []Entry, from, to uint64) {
	t.Helper()
	var seqs []uint64
	for _, e := range entries {
		if int(e.Data[0]) != int(e.Seq) {
			t.Fatalf("entry first-seq byte %d != Seq %d", e.Data[0], e.Seq)
		}
		if e.Count != len(e.Data)-1 {
			t.Fatalf("entry count %d != payload records %d", e.Count, len(e.Data)-1)
		}
		for i := 0; i < e.Count; i++ {
			seqs = append(seqs, e.Seq+uint64(i))
		}
	}
	want := to - from + 1
	if from > to {
		want = 0
	}
	if uint64(len(seqs)) != want {
		t.Fatalf("got %d records %v, want %d covering [%d,%d]", len(seqs), seqs, want, from, to)
	}
	for i, s := range seqs {
		if s != from+uint64(i) {
			t.Fatalf("record %d has seq %d, want %d (all: %v)", i, s, from+uint64(i), seqs)
		}
	}
}

func TestBatchRangeRecordGranular(t *testing.T) {
	l := NewWithSlicer(testSlicer)
	l.AppendBatch(1, 1, 4, testBatch(1, 4)) // [1,4]
	l.AppendBatch(1, 5, 3, testBatch(5, 3)) // [5,7]
	l.AppendBatch(1, 8, 5, testBatch(8, 5)) // [8,12]
	expectRecords(t, l.Range(1, 0, 12), 1, 12)
	// Both boundaries mid-batch: (2, 9] must slice the first and last batch.
	expectRecords(t, l.Range(1, 2, 9), 3, 9)
	// Range entirely inside one batch.
	expectRecords(t, l.Range(1, 8, 11), 9, 11)
	// No overlap.
	expectRecords(t, l.Range(1, 12, 20), 1, 0)
}

func TestBatchTrimStraddle(t *testing.T) {
	l := NewWithSlicer(testSlicer)
	l.AppendBatch(1, 1, 4, testBatch(1, 4))
	l.AppendBatch(1, 5, 4, testBatch(5, 4))
	l.Trim(1, 6) // mid-second-batch: [7,8] must survive
	expectRecords(t, l.Range(1, 0, 100), 7, 8)
	if st := l.Stats(); st.Records != 2 {
		t.Fatalf("Stats.Records = %d, want 2", st.Records)
	}
}

func TestBatchTrimSuffixStraddle(t *testing.T) {
	l := NewWithSlicer(testSlicer)
	l.AppendBatch(1, 1, 4, testBatch(1, 4))
	l.AppendBatch(1, 5, 4, testBatch(5, 4))
	l.TrimSuffix(1, 6) // stale suffix [7,8] must not survive
	expectRecords(t, l.Range(1, 0, 100), 1, 6)
	// Appending the regenerated records continues the sequence.
	l.AppendBatch(1, 7, 2, testBatch(7, 2))
	expectRecords(t, l.Range(1, 0, 100), 1, 8)
}

func TestBatchStatsCountsRecords(t *testing.T) {
	l := NewWithSlicer(testSlicer)
	l.AppendBatch(1, 1, 10, testBatch(1, 10))
	l.Append(2, 1, []byte{1, 1})
	st := l.Stats()
	if st.Entries != 2 || st.Records != 11 {
		t.Fatalf("Stats = %+v, want 2 entries / 11 records", st)
	}
}

func TestBatchedAppendWithoutSlicerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().AppendBatch(1, 1, 2, []byte{1, 1, 2})
}

// TestAppendBatchTakesOwningCopy: the engine recycles (and, under the
// poison debug mode, scribbles) wire frames after delivery, so the log must
// not alias the caller's buffer.
func TestAppendBatchTakesOwningCopy(t *testing.T) {
	l := NewWithSlicer(testSlicer)
	frame := testBatch(1, 4)
	l.AppendBatch(1, 1, 4, frame)
	for i := range frame {
		frame[i] = 0xDB // simulate a poisoned recycle of the sender's frame
	}
	entries := l.Range(1, 0, 100)
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	for _, b := range entries[0].Data {
		if b == 0xDB {
			t.Fatal("log entry aliases the recycled frame")
		}
	}
	expectRecords(t, entries, 1, 4)
}
