// Package msglog implements the durable in-flight message logging
// (upstream backup) that the uncoordinated and communication-induced
// checkpointing protocols require for exactly-once processing.
//
// Every data frame an operator instance sends is appended, keyed by its
// logical channel, together with the per-channel sequence range it covers —
// a single record or a whole batch envelope. After a failure, the recovery
// procedure replays from each channel's log the records that were sent
// before the sender's restored checkpoint but not yet reflected in the
// receiver's restored checkpoint — the in-flight channel state of the
// chosen recovery line. Replay ranges are record-granular even when frames
// are batched: a configured Slicer re-frames the partial overlap of a batch
// with the replay or trim boundary.
//
// Logs survive worker failures (they model state persisted outside the
// failing worker) and are trimmed once a prefix is subsumed by checkpoints
// on both ends of the channel.
package msglog

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Entry is one logged frame: the serialized wire envelope plus the
// per-channel sequence range it covers. Seq is the sequence number of the
// first record; Count the number of records (1 for unbatched frames), so
// the frame spans [Seq, Seq+Count-1].
type Entry struct {
	Seq   uint64
	Count int
	Data  []byte
}

// last reports the sequence number of the frame's final record.
func (e Entry) last() uint64 { return e.Seq + uint64(e.Count) - 1 }

// Slicer re-frames the records of a batched envelope whose sequence numbers
// fall in [fromSeq, toSeq] as a fresh envelope, returning it together with
// its record count (nil/0 when the ranges do not overlap). The engine
// injects its wire-format-aware implementation; a Log without a slicer only
// supports Count-1 appends.
type Slicer func(data []byte, fromSeq, toSeq uint64) ([]byte, int, error)

// channelLog is the log of a single channel. Entries are appended in
// sequence order; trimming removes a prefix.
type channelLog struct {
	mu      sync.Mutex
	base    uint64 // sequence number of entries[0]; seq numbering starts at 1
	entries []Entry
	bytes   uint64
}

// logShards stripes the channel→log map: every worker's sender goroutine
// appends to the log on every flush under UNC/CIC, and a single map mutex
// made those appends contend even though the per-channel logs underneath
// already had their own locks. Channel ids spread across shards via a
// Fibonacci hash, so appends from different workers (different channels)
// take disjoint shard locks.
const logShards = 32

// Log is a collection of per-channel message logs. Channel identifiers are
// opaque 64-bit keys chosen by the engine (they encode the edge and the
// endpoint instances).
type Log struct {
	shards [logShards]logShard
	slicer Slicer
	// slicerErrs counts frames whose re-framing failed (corrupt data).
	// Range degrades to returning the whole frame (over-replay, which
	// receivers deduplicate); TrimSuffix still drops the frame (a stale
	// suffix must never survive). Either way the incident is visible in
	// Stats instead of silent.
	slicerErrs atomic.Uint64
}

// logShard is one stripe of the channel map. The RWMutex guards only the
// map; entry mutation is guarded by each channelLog's own mutex.
type logShard struct {
	mu       sync.RWMutex
	channels map[uint64]*channelLog
}

// shardOf picks the stripe for a channel id.
func (l *Log) shardOf(ch uint64) *logShard {
	return &l.shards[(ch*0x9E3779B97F4A7C15)>>(64-5)]
}

// New returns an empty log that only accepts single-record appends.
func New() *Log {
	l := &Log{}
	for i := range l.shards {
		l.shards[i].channels = make(map[uint64]*channelLog)
	}
	return l
}

// NewWithSlicer returns an empty log that accepts batched appends,
// re-framing batches record-granularly at replay and trim boundaries.
func NewWithSlicer(s Slicer) *Log {
	l := New()
	l.slicer = s
	return l
}

func (l *Log) channel(ch uint64) *channelLog {
	s := l.shardOf(ch)
	s.mu.RLock()
	cl, ok := s.channels[ch]
	s.mu.RUnlock()
	if ok {
		return cl
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cl, ok = s.channels[ch]; ok {
		return cl
	}
	cl = &channelLog{base: 1}
	s.channels[ch] = cl
	return cl
}

// lookup returns the channel's log without creating it.
func (l *Log) lookup(ch uint64) (*channelLog, bool) {
	s := l.shardOf(ch)
	s.mu.RLock()
	cl, ok := s.channels[ch]
	s.mu.RUnlock()
	return cl, ok
}

// Append logs a single-record frame with sequence number seq on channel ch.
func (l *Log) Append(ch uint64, seq uint64, data []byte) {
	l.AppendBatch(ch, seq, 1, data)
}

// AppendBatch logs a frame covering records [firstSeq, firstSeq+count-1] on
// channel ch. Sequence ranges on a channel must be appended contiguously in
// strictly increasing order starting at 1. Batched appends (count > 1)
// require the log to have a Slicer, otherwise trim and replay boundaries
// could not be honored record-granularly.
//
// Ownership: AppendBatch takes an owning copy of data. The engine's wire
// frames are pooled and recycled (scribbled, under the poison debug mode)
// once delivered, while log entries must survive until trimmed — so the
// copy here is the log's side of the frame ownership rule, and the caller
// keeps ownership of data.
func (l *Log) AppendBatch(ch uint64, firstSeq uint64, count int, data []byte) {
	if count > 1 && l.slicer == nil {
		panic("msglog: batched append on a log without a slicer")
	}
	cl := l.channel(ch)
	cp := make([]byte, len(data))
	copy(cp, data)
	cl.mu.Lock()
	cl.entries = append(cl.entries, Entry{Seq: firstSeq, Count: count, Data: cp})
	cl.bytes += uint64(len(cp))
	cl.mu.Unlock()
}

// Range returns the logged frames on channel ch covering sequence numbers
// in (fromExcl, toIncl]. Frames straddling a boundary are re-framed through
// the slicer so the returned entries cover exactly the requested records;
// records below the trimmed prefix are silently absent.
func (l *Log) Range(ch uint64, fromExcl, toIncl uint64) []Entry {
	cl, ok := l.lookup(ch)
	if !ok {
		return nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var out []Entry
	for _, e := range cl.entries {
		if e.last() <= fromExcl || e.Seq > toIncl {
			continue
		}
		if e.Seq > fromExcl && e.last() <= toIncl {
			out = append(out, e)
			continue
		}
		sliced, err := l.slice(e, fromExcl+1, toIncl)
		if err != nil {
			// Corrupt frame: deliver it whole rather than silently losing
			// its in-range records — over-replayed records are dropped by
			// the receiver's sequence dedup, lost ones would violate
			// exactly-once.
			l.slicerErrs.Add(1)
			out = append(out, e)
			continue
		}
		if sliced.Count > 0 {
			out = append(out, sliced)
		}
	}
	return out
}

// slice re-frames entry e to the records in [fromSeq, toSeq].
func (l *Log) slice(e Entry, fromSeq, toSeq uint64) (Entry, error) {
	if l.slicer == nil {
		return Entry{}, fmt.Errorf("msglog: cannot slice entry without a slicer")
	}
	data, count, err := l.slicer(e.Data, fromSeq, toSeq)
	if err != nil {
		return Entry{}, err
	}
	if count == 0 {
		return Entry{Count: 0}, nil
	}
	first := e.Seq
	if fromSeq > first {
		first = fromSeq
	}
	return Entry{Seq: first, Count: count, Data: data}, nil
}

// Trim discards all records on channel ch with sequence numbers <= seq.
// It is called when a checkpoint frontier makes the prefix unnecessary.
// A batch straddling the boundary is re-framed to its surviving suffix.
func (l *Log) Trim(ch uint64, seq uint64) {
	cl, ok := l.lookup(ch)
	if !ok {
		return
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	i := 0
	for i < len(cl.entries) && cl.entries[i].last() <= seq {
		cl.bytes -= uint64(len(cl.entries[i].Data))
		i++
	}
	if i == 0 && (len(cl.entries) == 0 || cl.entries[0].Seq > seq) {
		return
	}
	kept := append(cl.entries[:0:0], cl.entries[i:]...)
	// Re-frame a batch straddling the trim point to its surviving suffix.
	// On a slicer error the whole frame is kept: over-retention only costs
	// log bytes, and replay overlap is deduplicated downstream.
	if len(kept) > 0 && kept[0].Seq <= seq {
		sliced, err := l.slice(kept[0], seq+1, kept[0].last())
		if err != nil {
			l.slicerErrs.Add(1)
		} else if sliced.Count > 0 {
			cl.bytes -= uint64(len(kept[0].Data))
			cl.bytes += uint64(len(sliced.Data))
			kept[0] = sliced
		}
	}
	cl.entries = kept
	cl.base = seq + 1
}

// TrimSuffix discards all records on channel ch with sequence numbers
// strictly greater than seq. It is called during recovery: records past the
// sender's restored checkpoint will be regenerated by reprocessing (possibly
// with different content), so the stale suffix must not survive. A batch
// straddling the boundary is re-framed to its surviving prefix.
func (l *Log) TrimSuffix(ch uint64, seq uint64) {
	cl, ok := l.lookup(ch)
	if !ok {
		return
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	keep := len(cl.entries)
	for keep > 0 && cl.entries[keep-1].Seq > seq {
		keep--
		cl.bytes -= uint64(len(cl.entries[keep].Data))
	}
	cl.entries = cl.entries[:keep]
	if keep > 0 && cl.entries[keep-1].last() > seq {
		last := cl.entries[keep-1]
		cl.bytes -= uint64(len(last.Data))
		sliced, err := l.slice(last, last.Seq, seq)
		switch {
		case err == nil && sliced.Count > 0:
			cl.bytes += uint64(len(sliced.Data))
			cl.entries[keep-1] = sliced
		case err != nil:
			// Corrupt frame: a stale suffix must never survive recovery, so
			// the whole frame is dropped (losing its surviving prefix to
			// conservative re-delivery elsewhere) and the incident counted.
			l.slicerErrs.Add(1)
			cl.entries = cl.entries[:keep-1]
		default:
			cl.entries = cl.entries[:keep-1]
		}
	}
}

// channelIDs snapshots the ids of every channel with a log.
func (l *Log) channelIDs() []uint64 {
	var chs []uint64
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.RLock()
		for ch := range s.channels {
			chs = append(chs, ch)
		}
		s.mu.RUnlock()
	}
	return chs
}

// TrimSuffixAll applies TrimSuffix to every channel using the frontier map;
// channels absent from the map are truncated entirely (frontier 0).
func (l *Log) TrimSuffixAll(frontier map[uint64]uint64) {
	for _, ch := range l.channelIDs() {
		l.TrimSuffix(ch, frontier[ch])
	}
}

// Stats reports the aggregate size of the log.
type Stats struct {
	Channels int
	// Entries counts logged frames; Records counts the data records they
	// cover (equal unless frames are batched).
	Entries int
	Records int
	Bytes   uint64
	// SlicerErrors counts frames whose record-granular re-framing failed;
	// non-zero means corrupt logged data was handled conservatively.
	SlicerErrors uint64
	// WALErrors counts durable-backend write failures (always zero for
	// the in-memory log).
	WALErrors uint64
}

// Stats returns a snapshot of the log's aggregate size.
func (l *Log) Stats() Stats {
	var s Stats
	s.SlicerErrors = l.slicerErrs.Load()
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.RLock()
		s.Channels += len(sh.channels)
		for _, cl := range sh.channels {
			cl.mu.Lock()
			s.Entries += len(cl.entries)
			for _, e := range cl.entries {
				s.Records += e.Count
			}
			s.Bytes += cl.bytes
			cl.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	return s
}
