package msglog

import (
	"sync/atomic"

	"checkmate/internal/wal"
)

// Backend is the seam between the engine and a message-log
// implementation. The in-memory Log is the default fast test path;
// DurableLog tees appends through a WAL before acknowledging them.
type Backend interface {
	Append(ch uint64, seq uint64, data []byte)
	AppendBatch(ch uint64, firstSeq uint64, count int, data []byte)
	Range(ch uint64, fromExcl, toIncl uint64) []Entry
	Trim(ch uint64, seq uint64)
	TrimSuffix(ch uint64, seq uint64)
	TrimSuffixAll(frontier map[uint64]uint64)
	Stats() Stats
}

var (
	_ Backend = (*Log)(nil)
	_ Backend = (*DurableLog)(nil)
)

// DurableLog is a message log whose appends are written to a
// write-ahead log before they are acknowledged, so in-flight channel
// state survives a process crash. Reads (Range) are served from the
// in-memory index, which is rebuilt from the WAL segments on restart.
//
// Under SyncAlways every append blocks on its own fsync — the honest
// per-commit cost model. Under group commit and interval sync the
// append path is pipelined: AppendBatch writes the WAL frame
// asynchronously and returns, and durability is enforced where it is
// actually needed — Barrier() blocks until everything appended so far
// is on disk, and the engine calls it before a checkpoint is reported
// durable. That barrier is what makes the pipelining safe: a message
// is either covered by the WAL's synced prefix (its sender's
// checkpoint waited for it) or upstream of the recovery line, in which
// case its sender re-produces it on replay and receiver-side dedup
// drops any duplicate.
type DurableLog struct {
	mem *Log
	w   *wal.WAL
	// syncAppends selects the blocking append path (SyncAlways).
	syncAppends bool
	// walErrs counts WAL write failures. The in-memory log keeps
	// working (the run degrades to in-memory durability) and the
	// incident is visible in Stats rather than taking the data plane
	// down mid-flush.
	walErrs atomic.Uint64
}

// OpenDurable opens (or recovers) a durable message log backed by WAL
// segments in dir. Recovery replays the surviving records in append
// order, which reproduces the exact in-memory state as of the last
// acknowledged write: appends rebuild entries, trims re-drop them.
func OpenDurable(dir string, opts wal.Options, s Slicer) (*DurableLog, error) {
	w, recs, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	mem := NewWithSlicer(s)
	for _, r := range recs {
		switch r.Type {
		case wal.RecAppend:
			mem.AppendBatch(r.Ch, r.Seq, int(r.Count), r.Data)
		case wal.RecTrim:
			mem.Trim(r.Ch, r.Seq)
		case wal.RecTrimSuffix:
			mem.TrimSuffix(r.Ch, r.Seq)
		}
	}
	return &DurableLog{mem: mem, w: w, syncAppends: opts.Policy == wal.SyncAlways}, nil
}

func (d *DurableLog) walAppend(r wal.Record) {
	if err := d.w.Append(r); err != nil {
		d.walErrs.Add(1)
	}
}

// walAppendAsync writes the frame without waiting for the fsync; the
// durability barrier is deferred to Barrier().
func (d *DurableLog) walAppendAsync(r wal.Record) {
	if _, err := d.w.AppendAsync(r); err != nil {
		d.walErrs.Add(1)
	}
}

// Append logs a single-record frame durably.
func (d *DurableLog) Append(ch uint64, seq uint64, data []byte) {
	d.AppendBatch(ch, seq, 1, data)
}

// AppendBatch writes the frame to the WAL and then to the in-memory
// index. SyncAlways blocks until the frame's own fsync lands; group
// commit and interval sync return once the frame is written and leave
// durability to the next Barrier(). The caller keeps ownership of
// data, same as Log.AppendBatch.
func (d *DurableLog) AppendBatch(ch uint64, firstSeq uint64, count int, data []byte) {
	r := wal.Record{Type: wal.RecAppend, Ch: ch, Seq: firstSeq, Count: uint32(count), Data: data}
	if d.syncAppends {
		d.walAppend(r)
	} else {
		d.walAppendAsync(r)
	}
	d.mem.AppendBatch(ch, firstSeq, count, data)
}

// LastLSN returns the WAL position of the most recent write; pass it
// to Barrier to wait for a specific prefix.
func (d *DurableLog) LastLSN() uint64 { return d.w.LastLSN() }

// Barrier blocks until the WAL is durable through lsn — the
// log-before-checkpoint barrier the pipelined append path relies on.
func (d *DurableLog) Barrier(lsn uint64) error { return d.w.WaitSynced(lsn) }

// Range reads from the in-memory index.
func (d *DurableLog) Range(ch uint64, fromExcl, toIncl uint64) []Entry {
	return d.mem.Range(ch, fromExcl, toIncl)
}

// Trim advances the durable trim frontier (whole segments below it are
// deleted) and trims the in-memory index.
func (d *DurableLog) Trim(ch uint64, seq uint64) {
	if err := d.w.Trim(ch, seq); err != nil {
		d.walErrs.Add(1)
	}
	d.mem.Trim(ch, seq)
}

// TrimSuffix durably records the post-recovery rollback of entries
// above seq. Unlike Trim, losing this record is NOT benign — a stale
// suffix replayed after a second crash would violate exactly-once — so
// it goes through the same acknowledged append path as data.
func (d *DurableLog) TrimSuffix(ch uint64, seq uint64) {
	d.walAppend(wal.Record{Type: wal.RecTrimSuffix, Ch: ch, Seq: seq})
	d.mem.TrimSuffix(ch, seq)
}

// TrimSuffixAll applies TrimSuffix to every channel using the frontier
// map; channels absent from the map are truncated entirely.
func (d *DurableLog) TrimSuffixAll(frontier map[uint64]uint64) {
	for _, ch := range d.mem.channelIDs() {
		d.TrimSuffix(ch, frontier[ch])
	}
}

// Stats reports the in-memory index size plus WAL error count.
func (d *DurableLog) Stats() Stats {
	s := d.mem.Stats()
	s.WALErrors = d.walErrs.Load()
	return s
}

// WALStats exposes the underlying WAL counters (fsyncs, bytes,
// segments) for the bench grid.
func (d *DurableLog) WALStats() wal.Stats { return d.w.Stats() }

// Close flushes and closes the WAL.
func (d *DurableLog) Close() error { return d.w.Close() }

// CrashClose closes the WAL without a final flush, simulating a
// process crash for chaos tests.
func (d *DurableLog) CrashClose() error { return d.w.CrashClose() }
