package msglog

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendRange(t *testing.T) {
	l := New()
	for seq := uint64(1); seq <= 10; seq++ {
		l.Append(7, seq, []byte{byte(seq)})
	}
	got := l.Range(7, 3, 6)
	if len(got) != 3 {
		t.Fatalf("Range = %d entries, want 3", len(got))
	}
	for i, e := range got {
		want := uint64(4 + i)
		if e.Seq != want || e.Data[0] != byte(want) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	if got := l.Range(7, 10, 20); len(got) != 0 {
		t.Fatalf("Range past end = %d entries", len(got))
	}
	if got := l.Range(99, 0, 100); got != nil {
		t.Fatalf("Range unknown channel = %v", got)
	}
}

func TestAppendCopiesData(t *testing.T) {
	l := New()
	buf := []byte{1, 2, 3}
	l.Append(1, 1, buf)
	buf[0] = 99
	got := l.Range(1, 0, 1)
	if got[0].Data[0] != 1 {
		t.Fatal("Append aliased caller buffer")
	}
}

func TestTrim(t *testing.T) {
	l := New()
	for seq := uint64(1); seq <= 10; seq++ {
		l.Append(1, seq, make([]byte, 4))
	}
	l.Trim(1, 4)
	if got := l.Range(1, 0, 10); len(got) != 6 || got[0].Seq != 5 {
		t.Fatalf("after trim Range = %v entries, first seq %d", len(got), got[0].Seq)
	}
	st := l.Stats()
	if st.Entries != 6 || st.Bytes != 24 {
		t.Fatalf("Stats = %+v", st)
	}
	l.Trim(1, 100) // trim everything
	if got := l.Range(1, 0, 100); len(got) != 0 {
		t.Fatalf("after full trim = %d entries", len(got))
	}
	l.Trim(2, 5) // unknown channel is a no-op
}

func TestTrimSuffix(t *testing.T) {
	l := New()
	for seq := uint64(1); seq <= 10; seq++ {
		l.Append(1, seq, make([]byte, 2))
	}
	l.TrimSuffix(1, 7)
	got := l.Range(1, 0, 100)
	if len(got) != 7 || got[len(got)-1].Seq != 7 {
		t.Fatalf("after TrimSuffix entries = %d, last seq %d", len(got), got[len(got)-1].Seq)
	}
	if st := l.Stats(); st.Bytes != 14 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	// Appending after a suffix trim continues the sequence.
	l.Append(1, 8, []byte{9, 9})
	got = l.Range(1, 7, 8)
	if len(got) != 1 || got[0].Data[0] != 9 {
		t.Fatalf("regenerated entry = %+v", got)
	}
	l.TrimSuffix(2, 5) // unknown channel: no-op
}

func TestTrimSuffixAll(t *testing.T) {
	l := New()
	for ch := uint64(1); ch <= 3; ch++ {
		for seq := uint64(1); seq <= 5; seq++ {
			l.Append(ch, seq, nil)
		}
	}
	// Channel 1 keeps 3, channel 2 keeps 0 (absent from frontier), channel
	// 3 keeps all.
	l.TrimSuffixAll(map[uint64]uint64{1: 3, 3: 99})
	if got := l.Range(1, 0, 100); len(got) != 3 {
		t.Fatalf("ch1 = %d entries", len(got))
	}
	if got := l.Range(2, 0, 100); len(got) != 0 {
		t.Fatalf("ch2 = %d entries", len(got))
	}
	if got := l.Range(3, 0, 100); len(got) != 5 {
		t.Fatalf("ch3 = %d entries", len(got))
	}
}

func TestStatsMultiChannel(t *testing.T) {
	l := New()
	l.Append(1, 1, make([]byte, 10))
	l.Append(2, 1, make([]byte, 5))
	l.Append(2, 2, make([]byte, 5))
	st := l.Stats()
	if st.Channels != 2 || st.Entries != 3 || st.Bytes != 20 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for ch := uint64(0); ch < 8; ch++ {
		wg.Add(1)
		go func(ch uint64) {
			defer wg.Done()
			for seq := uint64(1); seq <= 500; seq++ {
				l.Append(ch, seq, []byte(fmt.Sprintf("%d/%d", ch, seq)))
			}
		}(ch)
	}
	wg.Wait()
	for ch := uint64(0); ch < 8; ch++ {
		got := l.Range(ch, 0, 500)
		if len(got) != 500 {
			t.Fatalf("channel %d has %d entries", ch, len(got))
		}
	}
}

func TestQuickRangeMatchesNaive(t *testing.T) {
	f := func(n uint8, fromRaw, toRaw uint16) bool {
		total := uint64(n%50) + 1
		l := New()
		for seq := uint64(1); seq <= total; seq++ {
			l.Append(1, seq, nil)
		}
		from := uint64(fromRaw) % (total + 2)
		to := uint64(toRaw) % (total + 2)
		got := l.Range(1, from, to)
		want := 0
		for seq := uint64(1); seq <= total; seq++ {
			if seq > from && seq <= to {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
