package msglog

import (
	"bytes"
	"fmt"
	"testing"

	"checkmate/internal/wal"
)

func openDurableT(t *testing.T, dir string) *DurableLog {
	t.Helper()
	// Test slicer: frames are newline-joined "s<seq>" tokens, so the
	// record seqs are self-describing and slicing is a token filter.
	slicer := func(data []byte, fromSeq, toSeq uint64) ([]byte, int, error) {
		recs := bytes.Split(data, []byte{'\n'})
		var out [][]byte
		n := 0
		for _, r := range recs {
			var seq uint64
			fmt.Sscanf(string(r), "s%d", &seq)
			if seq >= fromSeq && seq <= toSeq {
				out = append(out, r)
				n++
			}
		}
		if n == 0 {
			return nil, 0, nil
		}
		return bytes.Join(out, []byte{'\n'}), n, nil
	}
	d, err := OpenDurable(dir, wal.Options{Policy: wal.SyncGroup}, slicer)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return d
}

// frame builds a batch envelope of count records starting at firstSeq,
// in the "s<seq>" token format the test slicer understands.
func frame(firstSeq uint64, count int) []byte {
	var parts [][]byte
	for i := 0; i < count; i++ {
		parts = append(parts, []byte(fmt.Sprintf("s%d", firstSeq+uint64(i))))
	}
	return bytes.Join(parts, []byte{'\n'})
}

func TestDurableLogRecoversAppends(t *testing.T) {
	dir := t.TempDir()
	d := openDurableT(t, dir)
	d.AppendBatch(1, 1, 4, frame(1, 4))
	d.AppendBatch(1, 5, 4, frame(5, 4))
	d.AppendBatch(2, 1, 1, frame(1, 1))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDurableT(t, dir)
	defer d2.Close()
	got := d2.Range(1, 0, 8)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 5 {
		t.Fatalf("recovered range mismatch: %+v", got)
	}
	if !bytes.Equal(got[0].Data, frame(1, 4)) {
		t.Fatalf("recovered data mismatch: %q", got[0].Data)
	}
	if st := d2.Stats(); st.Records != 9 {
		t.Fatalf("recovered %d records, want 9", st.Records)
	}
}

func TestDurableLogRecoversTrims(t *testing.T) {
	dir := t.TempDir()
	d := openDurableT(t, dir)
	d.AppendBatch(1, 1, 4, frame(1, 4))
	d.AppendBatch(1, 5, 4, frame(5, 4))
	d.Trim(1, 4)       // drops the first frame
	d.TrimSuffix(1, 6) // re-frames the second to [5,6]
	d.Close()

	d2 := openDurableT(t, dir)
	defer d2.Close()
	got := d2.Range(1, 0, 100)
	if len(got) != 1 || got[0].Seq != 5 || got[0].Count != 2 {
		t.Fatalf("recovered state after trims: %+v, want single [5,6] frame", got)
	}
}

func TestDurableLogCrashKeepsAcknowledged(t *testing.T) {
	dir := t.TempDir()
	d := openDurableT(t, dir)
	// Group commit: AppendBatch returns only after the WAL fsync, so a
	// crash immediately after must preserve every acknowledged frame.
	for i := 0; i < 10; i++ {
		d.AppendBatch(3, uint64(i)+1, 1, frame(uint64(i)+1, 1))
	}
	d.CrashClose()

	d2 := openDurableT(t, dir)
	defer d2.Close()
	if got := d2.Range(3, 0, 100); len(got) != 10 {
		t.Fatalf("crash lost acknowledged frames: got %d, want 10", len(got))
	}
}

func TestDurableLogTrimDeletesSegments(t *testing.T) {
	dir := t.TempDir()
	slicer := func(data []byte, fromSeq, toSeq uint64) ([]byte, int, error) {
		return data, 1, nil
	}
	d, err := OpenDurable(dir, wal.Options{Policy: wal.SyncAlways, MaxSegmentSize: 256}, slicer)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	big := bytes.Repeat([]byte("z"), 100)
	for i := 0; i < 20; i++ {
		d.AppendBatch(1, uint64(i)+1, 1, big)
	}
	d.Trim(1, 20)
	if st := d.WALStats(); st.SegmentsDeleted == 0 {
		t.Fatalf("trim freed no segments: %+v", st)
	}
}
