// Package checkmate is a Go reproduction of "CheckMate: Evaluating
// Checkpointing Protocols for Streaming Dataflows" (ICDE 2024). It bundles:
//
//   - a streaming dataflow engine (goroutine-per-operator-instance, bounded
//     FIFO channels with backpressure, hash/forward/broadcast partitioning,
//     failure injection and global rollback recovery) with a batched data
//     plane: records are exchanged in vectorized batch envelopes that share
//     routing headers and protocol piggybacks, with a protocol-aware flush
//     policy (EngineConfig.Batching) that drains buffers ahead of markers,
//     watermarks and snapshots so checkpoint semantics are identical at
//     every batch size;
//   - the three checkpointing protocol families of the paper — coordinated
//     aligned (COOR), uncoordinated (UNC) and communication-induced (CIC,
//     the HMNR protocol) — plus a checkpoint-free baseline;
//   - simulated substrates for the paper's external systems: a replayable
//     partitioned message queue (Kafka) and a durable checkpoint object
//     store (Minio);
//   - the NexMark workload (queries Q1, Q3, Q8, Q12 with a hot-items skew
//     knob, plus the Q2/Q4/Q5/Q7/Q11 and event-time Q12ET extensions) and
//     the cyclic reachability query;
//   - an experiment harness that regenerates every table and figure of the
//     paper's evaluation section;
//   - extensions the paper points at: the three processing guarantees of
//     §II-A as an engine knob (Semantics), exactly-once output via
//     transactional sinks (OutputTransactional), event-time watermarks
//     (WatermarkHandler), checkpoint trigger policies for the
//     uncoordinated family (UNCWithPolicy), straggler injection,
//     checkpoint garbage collection and compression, and savepoint-based
//     rescaling (Savepoint, Rescalable).
//
// # Quickstart
//
// Build a job, pick a protocol, run it:
//
//	job := &checkmate.JobSpec{
//		Ops: []checkmate.OpSpec{
//			{Name: "src", Source: &checkmate.SourceSpec{Topic: "events"}},
//			{Name: "count", New: func(int) checkmate.Operator { return myCounter() }},
//		},
//		Edges: []checkmate.EdgeSpec{{From: 0, To: 1, Part: checkmate.Hash}},
//	}
//	res, err := checkmate.Run(checkmate.RunConfig{
//		Query: "q1", Protocol: checkmate.UNC(), Workers: 4, Rate: 50_000,
//	})
//
// See examples/ for complete programs and bench_test.go for the experiment
// reproduction entry points.
package checkmate

import (
	"checkmate/internal/chaos"
	"checkmate/internal/cluster"
	"checkmate/internal/core"
	"checkmate/internal/harness"
	"checkmate/internal/metrics"
	"checkmate/internal/mq"
	"checkmate/internal/nexmark"
	"checkmate/internal/objstore"
	"checkmate/internal/protocol"
	"checkmate/internal/statestore"
	"checkmate/internal/trace"
	"checkmate/internal/wire"
)

// Dataflow graph construction.
type (
	// JobSpec is a logical dataflow graph.
	JobSpec = core.JobSpec
	// OpSpec describes one operator of a job.
	OpSpec = core.OpSpec
	// EdgeSpec connects two operators.
	EdgeSpec = core.EdgeSpec
	// SourceSpec marks an operator as a topic source.
	SourceSpec = core.SourceSpec
	// Partitioning selects how records travel across an edge.
	Partitioning = core.Partitioning
	// Operator is user logic executed by an instance.
	Operator = core.Operator
	// TimerHandler is implemented by operators using timers.
	TimerHandler = core.TimerHandler
	// WatermarkHandler is implemented by operators reacting to event-time
	// progress (watermark-fired windows).
	WatermarkHandler = core.WatermarkHandler
	// KeyedStateUser is implemented by operators that keep keyed state in
	// the engine-owned state backend (Context.KeyedState), enabling
	// incremental (base-plus-delta) checkpoints of that state.
	KeyedStateUser = core.KeyedStateUser
	// StateStore is the keyed state backend handed to KeyedStateUser
	// operators.
	StateStore = statestore.Store
	// ChainPolicy tunes base-vs-delta compaction of incremental
	// checkpoints (EngineConfig.ChainPolicy).
	ChainPolicy = statestore.ChainPolicy
	// Context is the runtime API available during callbacks.
	Context = core.Context
	// Event is one record delivered to an operator.
	Event = core.Event
)

// Partitioning modes.
const (
	// Forward connects instance i to instance i (no shuffling).
	Forward = core.Forward
	// Hash shuffles records by key.
	Hash = core.Hash
	// Broadcast delivers records to all downstream instances.
	Broadcast = core.Broadcast
)

// Engine execution.
type (
	// Engine executes one job under one protocol.
	Engine = core.Engine
	// EngineConfig parameterizes an Engine.
	EngineConfig = core.Config
	// BatchingConfig is the flush policy of the vectorized exchange
	// (EngineConfig.Batching): records crossing a channel are staged in
	// per-channel output buffers and shipped as one batch envelope sharing
	// the routing header, flushed on MaxRecords/MaxBytes/LingerTicks or by
	// protocol events (markers, watermarks, snapshots).
	BatchingConfig = core.BatchingConfig
	// Protocol is a checkpointing protocol implementation.
	Protocol = core.Protocol
	// Features is the Table I qualitative feature row of a protocol.
	Features = core.Features
	// Semantics selects the processing guarantee (exactly-once,
	// at-least-once, at-most-once) enforced by the logging protocols.
	Semantics = core.Semantics
	// OutputMode selects how sink output is exposed to the external
	// consumer (none, immediate, or transactional exactly-once output).
	OutputMode = core.OutputMode
	// OutputRecord is one record as seen by the external output consumer.
	OutputRecord = core.OutputRecord
	// OutputStats summarizes output-collector accounting.
	OutputStats = core.OutputStats
	// Savepoint is a parallelism-independent image of a drained pipeline
	// (stop-with-savepoint): a new engine can resume from it with a
	// different worker count.
	Savepoint = core.Savepoint
	// Rescalable is implemented by operators whose keyed state can be
	// redistributed when restoring a savepoint at a new parallelism.
	Rescalable = core.Rescalable
	// KeyedEntry is one exported keyed-state entry of a savepoint.
	KeyedEntry = core.KeyedEntry
)

// Cluster topology: worker placement, failure domains, local recovery.
type (
	// ClusterConfig configures the simulated cluster topology of an
	// engine (EngineConfig.Cluster): worker count, placement policy and
	// the worker-local state cache.
	ClusterConfig = cluster.Config
	// PlacementPolicy names a placement strategy mapping operator
	// instances to cluster workers.
	PlacementPolicy = cluster.Policy
	// Topology is an immutable instance→worker placement (Engine.Topology).
	Topology = cluster.Topology
	// FailurePlan expands a failure domain (single worker, rack,
	// rolling restart) into concrete injection events.
	FailurePlan = cluster.FailurePlan
	// FailureDomain names a failure shape.
	FailureDomain = cluster.Domain
	// CacheStats snapshots the worker-local state cache counters.
	CacheStats = cluster.CacheStats
	// RTO is the phase breakdown of one recovery: detection → rollback
	// computation → state fetch → replay → caught-up, plus local-vs-
	// remote restore accounting (Summary.RTOs).
	RTO = metrics.RTO
)

// Placement policies (ClusterConfig.Policy).
const (
	// PlacementSpread spreads each operator's instances across the
	// cluster, co-locating equal instance indexes (default).
	PlacementSpread = cluster.PolicySpread
	// PlacementRoundRobin deals instances onto workers in global
	// instance order.
	PlacementRoundRobin = cluster.PolicyRoundRobin
	// PlacementColocate hosts all instances of one operator on a single
	// hashed worker.
	PlacementColocate = cluster.PolicyColocate
	// PlacementExplicit uses ClusterConfig.Assignment.
	PlacementExplicit = cluster.PolicyExplicit
)

// Failure domains (FailurePlan.Domain).
const (
	// FailWorker crashes a single worker.
	FailWorker = cluster.DomainWorker
	// FailRack crashes several consecutive workers at once.
	FailRack = cluster.DomainRack
	// FailRolling crashes workers one after another.
	FailRolling = cluster.DomainRolling
	// FailFlapping crashes the same worker repeatedly.
	FailFlapping = cluster.DomainFlapping
)

// Processing guarantees (paper §II-A, Definitions 1-3).
const (
	// ExactlyOnce reflects every state change exactly once (default).
	ExactlyOnce = core.ExactlyOnce
	// AtLeastOnce never loses a record but may process some more than once.
	AtLeastOnce = core.AtLeastOnce
	// AtMostOnce never duplicates but loses in-flight records on failure.
	AtMostOnce = core.AtMostOnce
)

// Output modes (paper §II-A: exactly-once processing vs exactly-once
// output).
const (
	// OutputNone collects no sink output (default).
	OutputNone = core.OutputNone
	// OutputImmediate publishes sink output instantly; an external
	// consumer can observe duplicates after a failure.
	OutputImmediate = core.OutputImmediate
	// OutputTransactional commits sink output per checkpoint epoch,
	// extending exactly-once processing to exactly-once output.
	OutputTransactional = core.OutputTransactional
)

// SemanticsByName resolves a processing guarantee by name.
func SemanticsByName(name string) (Semantics, error) { return core.SemanticsByName(name) }

// NewEngine validates a job and builds an engine.
func NewEngine(cfg EngineConfig, job *JobSpec) (*Engine, error) {
	return core.NewEngine(cfg, job)
}

// Protocols.

// NONE returns the checkpoint-free baseline protocol.
func NONE() Protocol { return protocol.None{} }

// COOR returns the coordinated aligned checkpointing protocol.
func COOR() Protocol { return protocol.Coordinated{} }

// UNC returns the uncoordinated checkpointing protocol.
func UNC() Protocol { return protocol.Uncoordinated{} }

// CIC returns the communication-induced checkpointing protocol (HMNR).
func CIC() Protocol { return protocol.CIC{} }

// ProtocolByName resolves NONE/COOR/UNC/CIC (plus the UCOOR and BCS
// extensions) by name.
func ProtocolByName(name string) (Protocol, error) { return protocol.ByName(name) }

// Checkpoint trigger policies for the uncoordinated protocol (§III-B's
// "different operators can have different checkpoint intervals").
type (
	// TriggerPolicy decides when an uncoordinated instance checkpoints.
	TriggerPolicy = protocol.TriggerPolicy
	// IntervalPolicy checkpoints on a (jittered) wall-clock interval.
	IntervalPolicy = protocol.Interval
	// EventCountPolicy checkpoints after a processed-message budget,
	// bounding the replay volume on recovery.
	EventCountPolicy = protocol.EventCount
	// IdlePolicy checkpoints when the instance goes quiet (cheap moment:
	// small frontier, often just-evicted window state).
	IdlePolicy = protocol.Idle
)

// UNCWithPolicy returns the uncoordinated protocol with a custom checkpoint
// trigger policy.
func UNCWithPolicy(p TriggerPolicy) Protocol {
	return protocol.UncoordinatedWithPolicy{Policy: p}
}

// AllProtocols returns the baseline plus the three protocol families.
func AllProtocols() []Protocol { return protocol.All() }

// Experiments.
type (
	// RunConfig describes a single experiment run.
	RunConfig = harness.RunConfig
	// RunResult is the outcome of a run.
	RunResult = harness.RunResult
	// MSTConfig controls the sustainable-throughput search.
	MSTConfig = harness.MSTConfig
	// Suite reproduces the paper's evaluation section.
	Suite = harness.Suite
	// BenchConfig describes one drain-style data-plane throughput
	// measurement (see BenchThroughput).
	BenchConfig = harness.BenchConfig
	// BenchPoint is one machine-readable throughput measurement, the unit
	// of the committed BENCH_throughput.json trajectory.
	BenchPoint = harness.BenchPoint
	// RecoveryBenchConfig describes one recovery-time (RTO) measurement
	// (see BenchRecovery).
	RecoveryBenchConfig = harness.RecoveryBenchConfig
	// RecoveryPoint is one machine-readable RTO measurement, the unit of
	// the committed BENCH_recovery.json trajectory.
	RecoveryPoint = harness.RecoveryPoint
	// ChaosPlan is the deterministic fault-injection plan of a run:
	// windowed store brownouts/outages/latency spikes, WAL fsync stalls
	// and exchange delay/jitter (RunConfig.Chaos).
	ChaosPlan = chaos.Plan
	// ChaosWindow is one fault window of a ChaosPlan, offset from engine
	// start.
	ChaosWindow = chaos.Window
	// ChaosStats is the robustness accounting of a run: retry/backoff
	// counters, injected faults, watchdog round abandonments and the
	// degraded-mode ledger (RunResult.Chaos).
	ChaosStats = core.ChaosStats
	// RetryConfig tunes the engine's shared store retry policy
	// (EngineConfig.Retry).
	RetryConfig = core.RetryConfig
	// ScenarioConfig selects one named hostile scenario run (see
	// RunScenario and Scenarios).
	ScenarioConfig = harness.ScenarioConfig
	// ScenarioPoint is one machine-readable hostile-scenario measurement,
	// the unit of the committed BENCH_scenarios.json trajectory.
	ScenarioPoint = harness.ScenarioPoint
	// Summary is the full metric snapshot of a run.
	Summary = metrics.Summary
	// Table is an aligned-text result table.
	Table = metrics.Table
)

// QueryCyclic names the cyclic reachability query in RunConfig.Query.
const QueryCyclic = harness.QueryCyclic

// QueryConfig tunes the bundled NexMark queries (see BuildQuery).
type QueryConfig = nexmark.QueryConfig

// BuildQuery constructs the dataflow of a bundled NexMark query by name,
// for running outside the harness (custom engines, topology inspection).
func BuildQuery(name string, qc QueryConfig) (*JobSpec, error) { return nexmark.Build(name, qc) }

// QueryTopics lists the broker topics a bundled NexMark query consumes.
func QueryTopics(name string) []string { return nexmark.TopicsFor(name) }

// Run executes one experiment run.
func Run(cfg RunConfig) (RunResult, error) { return harness.Run(cfg) }

// FindMST searches for the maximum sustainable throughput.
func FindMST(cfg MSTConfig) (float64, error) { return harness.FindMST(cfg) }

// BenchThroughput drains a fixed record volume as fast as the engine can
// and reports the achieved data-plane throughput — the measurement behind
// the committed BENCH_throughput.json baseline.
func BenchThroughput(cfg BenchConfig) (BenchPoint, error) { return harness.BenchThroughput(cfg) }

// BenchRecovery injects a failure into a paced run and measures the RTO
// phase breakdown (detection, rollback computation, state fetch, replay,
// catch-up) — the measurement behind the committed BENCH_recovery.json
// baseline.
func BenchRecovery(cfg RecoveryBenchConfig) (RecoveryPoint, error) { return harness.BenchRecovery(cfg) }

// RunScenario runs one named hostile scenario (deterministic fault
// injection + failure plan + workload skew) with transactional output and
// reduces it to a ScenarioPoint carrying the exactly-once verdict — the
// measurement behind the committed BENCH_scenarios.json baseline.
func RunScenario(cfg ScenarioConfig) (ScenarioPoint, error) { return harness.RunScenario(cfg) }

// Scenarios lists the registered hostile-scenario names, sorted.
func Scenarios() []string { return harness.Scenarios() }

// ScenarioDoc returns the one-line description of a named scenario ("" if
// unknown).
func ScenarioDoc(name string) string { return harness.ScenarioDoc(name) }

// FramePoolStats is a snapshot of the engine's frame-pool counters (see
// ReadFramePoolStats).
type FramePoolStats = core.FramePoolStats

// SetFramePoison toggles the frame pool's poison-on-recycle debug mode
// process-wide: recycled wire frames are scribbled before reuse so stale
// aliases corrupt deterministically. Returns the previous setting.
func SetFramePoison(enabled bool) (prev bool) { return core.SetFramePoison(enabled) }

// SetFramePooling enables or disables frame pooling process-wide (enabled
// by default); disabling restores the one-allocation-per-envelope data
// plane for A/B measurements. Returns the previous setting.
func SetFramePooling(enabled bool) (prev bool) { return core.SetFramePooling(enabled) }

// ReadFramePoolStats returns the process-wide frame pool counters.
func ReadFramePoolStats() FramePoolStats { return core.ReadFramePoolStats() }

// Observability: the checkpoint-lifecycle span collector and its exports.
type (
	// Tracer is the run-scoped span collector (RunConfig.Trace enables
	// it; RunResult.Trace carries it; EngineConfig.Trace attaches one to
	// a custom engine).
	Tracer = trace.Tracer
	// TraceTrack is one goroutine's span timeline within a Tracer.
	TraceTrack = trace.Track
	// TraceEvent is one recorded span or instant.
	TraceEvent = trace.Event
	// PhaseStat aggregates the spans of one lifecycle phase
	// (Summary.RoundPhases).
	PhaseStat = metrics.PhaseStat
)

// NewTracer returns an enabled span collector; capPerTrack bounds each
// track's event ring (<= 0 selects the default).
func NewTracer(capPerTrack int) *Tracer { return trace.New(capPerTrack) }

// ValidateChromeTrace parses a Chrome trace-event file written by
// Tracer.WriteChromeFile and verifies that the spans of every track form
// a proper nesting tree. Returns the span count.
func ValidateChromeTrace(path string) (int, error) { return trace.ValidateChromeFile(path) }

// ServeObservability binds addr and serves /metrics (from snapshot),
// /trace.json (from tr) and /debug/pprof until Close. Either argument
// may be nil (its endpoint 404s). See trace.Serve.
var ServeObservability = trace.Serve

// NewSuite returns the bench-scale experiment suite (20× time-compressed).
func NewSuite() *Suite { return harness.NewSuite() }

// FullPaperSuite returns the paper-scale suite (60-second runs, up to 100
// workers).
func FullPaperSuite() *Suite { return harness.FullPaperSuite() }

// Substrates, exposed for custom pipelines.
type (
	// Broker is the simulated replayable message queue (Kafka stand-in).
	Broker = mq.Broker
	// Topic is a named set of partitions.
	Topic = mq.Topic
	// ObjectStore is the simulated durable checkpoint store (Minio
	// stand-in).
	ObjectStore = objstore.Store
	// ObjectStoreConfig configures the store's latency model.
	ObjectStoreConfig = objstore.Config
	// Recorder collects run metrics.
	Recorder = metrics.Recorder
)

// NewBroker returns an empty broker.
func NewBroker() *Broker { return mq.NewBroker() }

// NewObjectStore returns an empty object store.
func NewObjectStore(cfg ObjectStoreConfig) *ObjectStore { return objstore.New(cfg) }

// NewRecorder returns a metrics recorder; see metrics.NewRecorder.
var NewRecorder = metrics.NewRecorder

// Serialization, for implementing custom record types.
type (
	// Encoder appends primitive values to a buffer.
	Encoder = wire.Encoder
	// Decoder reads primitive values from a buffer.
	Decoder = wire.Decoder
	// Value is the interface record payloads implement.
	Value = wire.Value
)

// NewEncoder returns an encoder writing into buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return wire.NewEncoder(buf) }

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return wire.NewDecoder(buf) }

// RegisterType registers the decoder of a custom payload type. Application
// type IDs should start at 100; IDs below that are reserved for the bundled
// workloads.
func RegisterType(id uint16, fn func(*Decoder) (Value, error)) {
	wire.RegisterType(id, func(d *wire.Decoder) (wire.Value, error) { return fn(d) })
}
